#include "core/otif.h"

#include <algorithm>
#include <map>

#include "core/window_select.h"
#include "models/detector.h"
#include "sim/raster.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace otif::core {

Otif::Otif(sim::DatasetSpec spec, RunScale scale)
    : spec_(std::move(spec)), scale_(scale) {
  OTIF_CHECK_GT(scale_.train_clips, 0);
  OTIF_CHECK_GT(scale_.valid_clips, 0);
  OTIF_CHECK_GT(scale_.clip_seconds, 0);
  OTIF_CHECK_GE(scale_.proxy_resolutions, 1);
  OTIF_CHECK_LE(static_cast<size_t>(scale_.proxy_resolutions),
                models::StandardProxyResolutions().size());
}

std::vector<sim::Clip> Otif::MakeClips(int split, int count) const {
  std::vector<sim::Clip> clips;
  clips.reserve(static_cast<size_t>(count));
  const int frames = scale_.clip_seconds * spec_.fps;
  for (int c = 0; c < count; ++c) {
    clips.push_back(
        sim::SimulateClip(spec_, sim::ClipSeed(spec_, split, c), frames));
  }
  return clips;
}

std::vector<sim::Clip> Otif::TrainClips() const {
  return MakeClips(0, scale_.train_clips);
}
std::vector<sim::Clip> Otif::ValidClips() const {
  return MakeClips(1, scale_.valid_clips);
}
std::vector<sim::Clip> Otif::TestClips() const {
  return MakeClips(2, scale_.test_clips);
}

void Otif::TrainProxies() {
  const auto resolutions = models::StandardProxyResolutions();
  Rng rng(spec_.seed * 77 + 5);
  // theta_best detections provide the training labels (Sec 3.3).
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), theta_best_.detector_arch);
  models::SimulatedDetector detector(arch);

  std::vector<std::unique_ptr<sim::Rasterizer>> rasters;
  for (const sim::Clip& clip : train_clips_) {
    rasters.push_back(std::make_unique<sim::Rasterizer>(&clip));
  }

  for (int r = 0; r < scale_.proxy_resolutions; ++r) {
    auto proxy = std::make_unique<models::ProxyModel>(
        resolutions[static_cast<size_t>(r)], spec_.seed * 13 + r);
    Rng sampler_rng = rng.Fork();
    auto sampler = [&]() {
      for (int attempt = 0; attempt < 256; ++attempt) {
        const size_t ci = static_cast<size_t>(
            sampler_rng.UniformInt(static_cast<uint64_t>(train_clips_.size())));
        const sim::Clip& clip = train_clips_[ci];
        const int f = static_cast<int>(sampler_rng.UniformInt(
            static_cast<uint64_t>(clip.num_frames())));
        const track::FrameDetections dets = models::FilterByConfidence(
            detector.Detect(clip, f, theta_best_.detector_scale),
            theta_best_.detector_confidence);
        // Paper: sample frames where theta_best produced detections.
        if (dets.empty()) continue;
        models::ProxySample s;
        s.frame = rasters[ci]->Render(f, proxy->resolution().raster_w(),
                                      proxy->resolution().raster_h());
        s.labels = proxy->MakeLabels(dets, spec_.width, spec_.height);
        return s;
      }
      // Sparse dataset fallback: train on an empty frame.
      models::ProxySample s;
      const sim::Clip& clip = train_clips_[0];
      s.frame = rasters[0]->Render(0, proxy->resolution().raster_w(),
                                   proxy->resolution().raster_h());
      s.labels = proxy->MakeLabels(
          models::FilterByConfidence(
              detector.Detect(clip, 0, theta_best_.detector_scale),
              theta_best_.detector_confidence),
          spec_.width, spec_.height);
      return s;
    };
    models::TrainProxyModel(proxy.get(), sampler, scale_.proxy_train_steps);
    trained_.proxies.push_back(std::move(proxy));
  }
  // Simulated training cost: the paper reports <10 min for all proxies;
  // charge proportional to steps at a V100-class rate.
  simulated_training_seconds_ +=
      0.02 * scale_.proxy_train_steps * scale_.proxy_resolutions;
}

void Otif::TrainTrackerNet() {
  trained_.tracker_net =
      std::make_unique<models::TrackerNet>(spec_.seed * 31 + 7);
  Rng rng(spec_.seed * 131 + 11);

  // Appearance provider: low-res renders of training frames, cached.
  std::vector<std::unique_ptr<sim::Rasterizer>> rasters;
  for (const sim::Clip& clip : train_clips_) {
    rasters.push_back(std::make_unique<sim::Rasterizer>(&clip));
  }
  std::map<std::pair<int, int>, video::Image> render_cache;
  auto appearance = [&](size_t track_idx, const track::Detection& d) {
    const int ci = s_star_clip_[track_idx];
    const int local = d.frame - s_star_offset_[track_idx];
    auto it = render_cache.find({ci, local});
    if (it == render_cache.end()) {
      it = render_cache
               .emplace(std::make_pair(ci, local),
                        rasters[static_cast<size_t>(ci)]->Render(local, 40, 24))
               .first;
    }
    return models::TrackerNet::AppearanceStats(it->second, d.box, spec_.width,
                                               spec_.height);
  };

  // Index S* tracks; detections in the same (globally offset) frame of
  // other tracks act as matching negatives.
  std::vector<size_t> usable;
  for (size_t i = 0; i < s_star_.size(); ++i) {
    if (s_star_[i].detections.size() >= 4) usable.push_back(i);
  }
  if (usable.empty()) return;
  // Frame -> detections of all tracks (for negatives).
  std::map<int, track::FrameDetections> by_frame;
  for (const track::Track& t : s_star_) {
    for (const track::Detection& d : t.detections) {
      by_frame[d.frame].push_back(d);
    }
  }

  const double fw = spec_.width, fh = spec_.height, fps = spec_.fps;
  for (int step = 0; step < scale_.tracker_train_steps; ++step) {
    const size_t track_idx = usable[static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(usable.size())))];
    const track::Track& t = s_star_[track_idx];
    // Sample a gap g ~ {1, 2, 4, ..., max_training_gap} (Sec 3.4).
    int gap = 1;
    {
      int levels = 1;
      while ((1 << levels) <= scale_.max_training_gap) ++levels;
      gap = 1 << rng.UniformInt(static_cast<uint64_t>(levels));
    }
    // Sub-sample detections >= gap frames apart.
    std::vector<const track::Detection*> sub;
    int last_frame = -1 << 20;
    for (const track::Detection& d : t.detections) {
      if (d.frame - last_frame >= gap) {
        sub.push_back(&d);
        last_frame = d.frame;
      }
    }
    if (sub.size() < 3) continue;
    // Random prefix split: prefix = sub[0..k), truth = sub[k].
    const size_t k = 2 + static_cast<size_t>(rng.UniformInt(
                             static_cast<uint64_t>(sub.size() - 2)));
    const size_t prefix_start = k > 6 ? k - 6 : 0;  // Bound BPTT length.

    models::TrackerNet::Example ex;
    int prev_frame = sub[prefix_start]->frame - gap;
    for (size_t i = prefix_start; i < k; ++i) {
      const auto [mean, stdev] = appearance(track_idx, *sub[i]);
      ex.prefix_features.push_back(models::TrackerNet::DetFeature(
          *sub[i], sub[i]->frame - prev_frame, fps, fw, fh, mean, stdev));
      prev_frame = sub[i]->frame;
    }
    const track::Detection& truth = *sub[k];
    const track::Detection& last = *sub[k - 1];
    const track::Detection& before_last = k >= 2 ? *sub[k - 2] : last;
    // Candidates: the truth plus other detections in the truth's frame.
    std::vector<const track::Detection*> candidates = {&truth};
    auto it = by_frame.find(truth.frame);
    if (it != by_frame.end()) {
      for (const track::Detection& d : it->second) {
        if (d.gt_id != truth.gt_id || d.box.cx != truth.box.cx) {
          if (candidates.size() < 6) candidates.push_back(&d);
        }
      }
    }
    ex.positive_index = 0;
    for (const track::Detection* c : candidates) {
      const auto [mean, stdev] = appearance(track_idx, *c);
      ex.candidate_features.push_back(models::TrackerNet::DetFeature(
          *c, truth.frame - last.frame, fps, fw, fh, mean, stdev));
      ex.candidate_pair_features.push_back(models::TrackerNet::PairFeature(
          before_last, last, *c, fps, fw, fh));
    }
    trained_.tracker_net->TrainStep(ex);
  }
  simulated_training_seconds_ += 0.01 * scale_.tracker_train_steps;
}

void Otif::SelectWindows() {
  // Oracle cells from theta_best detections over sampled training frames
  // (the paper assumes a perfect proxy when selecting W). Use the largest
  // proxy resolution's grid geometry.
  OTIF_CHECK(!trained_.proxies.empty());
  const models::ProxyModel& proxy = *trained_.proxies[0];
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), theta_best_.detector_arch);
  models::SimulatedDetector detector(arch);

  std::vector<CellGrid> grids;
  Rng rng(spec_.seed * 17 + 3);
  for (int s = 0; s < scale_.window_sample_frames; ++s) {
    const size_t ci = static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(train_clips_.size())));
    const sim::Clip& clip = train_clips_[ci];
    const int f = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(clip.num_frames())));
    const track::FrameDetections dets = models::FilterByConfidence(
        detector.Detect(clip, f, theta_best_.detector_scale),
        theta_best_.detector_confidence);
    const nn::Tensor labels = proxy.MakeLabels(dets, spec_.width, spec_.height);
    CellGrid grid;
    grid.grid_w = proxy.resolution().grid_w();
    grid.grid_h = proxy.resolution().grid_h();
    grid.positive.assign(static_cast<size_t>(grid.grid_w) * grid.grid_h, 0);
    for (int64_t i = 0; i < labels.size(); ++i) {
      grid.positive[static_cast<size_t>(i)] = labels[i] > 0.5f ? 1 : 0;
    }
    grids.push_back(std::move(grid));
  }
  WindowSizeSelector selector(spec_.width, spec_.height,
                              WindowSizeSelector::Options{});
  trained_.window_sizes = selector.Select(grids, arch);
  simulated_training_seconds_ += 3.0;  // Paper Fig 6: ~3 s for this step.
}

void Otif::BuildRefiner() {
  if (spec_.moving_camera) return;  // Refinement targets fixed cameras.
  track::DbscanOptions dbscan;
  dbscan.epsilon = 0.04 * std::max(spec_.width, spec_.height);
  const auto clusters = track::ClusterTracks(s_star_, dbscan);
  // Distances scale with the frame so small datasets do not blend paths.
  track::TrackRefiner::Options opts;
  opts.max_cluster_distance = 0.12 * std::max(spec_.width, spec_.height);
  opts.index_cell_px = 0.05 * std::max(spec_.width, spec_.height);
  trained_.refiner = std::make_unique<track::TrackRefiner>(clusters, opts);
}

void Otif::Prepare(const AccuracyFn& validation_accuracy,
                   const Tuner::Options& tuner_options) {
  OTIF_CHECK(!prepared_) << "Prepare() may only run once per instance";
  prepared_ = true;

  const std::vector<sim::Clip> validation = ValidClips();
  train_clips_ = TrainClips();

  // 1. Select theta_best on the validation set (SORT tracker; proxies and
  //    the recurrent model do not exist yet).
  theta_best_ = SelectBestConfig(validation, validation_accuracy,
                                 &theta_best_accuracy_);

  // 2. Compute S*: tracks under theta_best over the training set. Frames
  //    are offset per clip so S* detections carry globally unique frames
  //    (used by tracker training to find same-frame negatives).
  {
    Pipeline pipeline(theta_best_, nullptr);
    // Per-clip runs are independent; the offset bookkeeping below stays
    // serial in clip order so S* is identical to a serial pass.
    std::vector<PipelineResult> per_clip = ParallelMap(
        ThreadPool::Default(), static_cast<int64_t>(train_clips_.size()),
        [&](int64_t ci) {
          return pipeline.Run(train_clips_[static_cast<size_t>(ci)]);
        });
    int frame_offset = 0;
    for (size_t ci = 0; ci < train_clips_.size(); ++ci) {
      PipelineResult& r = per_clip[ci];
      for (track::Track& t : r.tracks) {
        for (track::Detection& d : t.detections) d.frame += frame_offset;
        t.id = static_cast<int64_t>(s_star_.size());
        s_star_.push_back(std::move(t));
        s_star_clip_.push_back(static_cast<int>(ci));
        s_star_offset_.push_back(frame_offset);
      }
      frame_offset += train_clips_[ci].num_frames() + 1024;
    }
  }

  // 3. Train models and build structures.
  TrainProxies();
  TrainTrackerNet();
  SelectWindows();
  BuildRefiner();

  // 4. Joint parameter tuning. theta_best itself anchors the curve's
  //    slow/accurate end (the paper's Fig 5 shows methods sharing this
  //    naive top-right configuration).
  Tuner tuner(&validation, &trained_, validation_accuracy, tuner_options);
  curve_ = tuner.Run(theta_best_);
  {
    EvalResult r = EvaluateConfig(theta_best_, &trained_, validation,
                                  validation_accuracy);
    curve_.insert(curve_.begin(), {theta_best_, r.seconds, r.accuracy});
  }
}

const TunerPoint& Otif::FastestWithinTolerance(double tolerance) const {
  OTIF_CHECK(!curve_.empty());
  double best_acc = 0.0;
  for (const TunerPoint& p : curve_) best_acc = std::max(best_acc, p.val_accuracy);
  const TunerPoint* fastest = &curve_.front();
  for (const TunerPoint& p : curve_) {
    if (p.val_accuracy >= best_acc - tolerance &&
        p.val_seconds < fastest->val_seconds) {
      fastest = &p;
    }
  }
  return *fastest;
}

EvalResult Otif::Execute(const PipelineConfig& config,
                         const std::vector<sim::Clip>& clips,
                         const AccuracyFn& accuracy_fn) const {
  // Execution-phase runs (as opposed to the tuner's evaluation loop) go
  // through the environment-selected executor; the streaming default
  // batches proxy and detector invocations across clips. Results are
  // bit-identical either way.
  return EvaluateConfigWith(ExecutorKindFromEnv(), config, &trained_, clips,
                            accuracy_fn);
}

}  // namespace otif::core
