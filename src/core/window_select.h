#ifndef OTIF_CORE_WINDOW_SELECT_H_
#define OTIF_CORE_WINDOW_SELECT_H_

#include <vector>

#include "core/cell_grouping.h"
#include "models/detector.h"

namespace otif::core {

/// Selects the fixed set of detector window sizes W (paper Sec 3.3
/// "Determining Fixed Set of Window Sizes"). Assuming a perfect proxy
/// (positive cells = object locations), W* minimizes the expected detector
/// runtime sum_t est(R*(I_t; W)) over sampled frames. The greedy algorithm
/// initializes W with the full-frame size (the fallback must always be
/// available) and repeatedly adds the candidate size with the greatest
/// runtime decrease until |W| = k.
class WindowSizeSelector {
 public:
  struct Options {
    /// Target cardinality |W| (paper: k = 3, set by GPU memory).
    int k = 3;
    /// Candidate side lengths are multiples of this many cells.
    int candidate_step_cells = 2;
  };

  /// `frame_w`/`frame_h` are the scaled detector-input dimensions; grids
  /// come from the proxy's positive cells on sampled frames (oracle cells
  /// during selection).
  WindowSizeSelector(double frame_w, double frame_h, Options options);

  /// Greedily selects W given sampled cell grids.
  std::vector<WindowSize> Select(const std::vector<CellGrid>& sample_grids,
                                 const models::DetectorArch& arch) const;

  /// Runtime objective: sum of est(R(grid; sizes)) over the samples.
  double TotalEstSeconds(const std::vector<CellGrid>& sample_grids,
                         const std::vector<WindowSize>& sizes,
                         const models::DetectorArch& arch) const;

 private:
  double frame_w_, frame_h_;
  Options options_;
};

}  // namespace otif::core

#endif  // OTIF_CORE_WINDOW_SELECT_H_
