#ifndef OTIF_CORE_CELL_GROUPING_H_
#define OTIF_CORE_CELL_GROUPING_H_

#include <vector>

#include "geom/geometry.h"
#include "models/detector.h"
#include "nn/tensor.h"

namespace otif::core {

/// A candidate detector window size (in detector-input pixels).
struct WindowSize {
  int w = 0;
  int h = 0;
  bool operator==(const WindowSize& o) const { return w == o.w && h == o.h; }
};

/// Binary grid of positive proxy cells (row-major, grid_h x grid_w).
struct CellGrid {
  int grid_w = 0;
  int grid_h = 0;
  std::vector<uint8_t> positive;

  static CellGrid FromScores(const nn::Tensor& scores, double threshold);

  bool at(int gx, int gy) const {
    return positive[static_cast<size_t>(gy) * grid_w + gx] != 0;
  }
  void set(int gx, int gy, bool v) {
    positive[static_cast<size_t>(gy) * grid_w + gx] = v ? 1 : 0;
  }
  int CountPositive() const;
};

/// A chosen rectangle: placement in cell coordinates plus the window size
/// (in scaled-frame pixels) that the detector will execute.
struct PlacedWindow {
  /// Covered cell range [cell_x0, cell_x1) x [cell_y0, cell_y1).
  int cell_x0 = 0, cell_y0 = 0, cell_x1 = 0, cell_y1 = 0;
  WindowSize size;
};

/// Result of grouping cells into windows for one frame.
struct GroupingResult {
  std::vector<PlacedWindow> windows;
  /// Estimated detector execution time est(R) over the windows, seconds.
  double est_seconds = 0.0;
  /// True when the grouper fell back to a single full-frame window.
  bool full_frame = false;
};

/// Groups positive cells into rectangular windows drawn from the fixed size
/// set W (paper Sec 3.3 "Grouping Cells during Execution"): connected
/// components are clusters; clusters merge greedily while the merge lowers
/// est(R) = sum of window execution times; the result falls back to the
/// full frame when that is cheaper. `frame_w`/`frame_h` are the scaled
/// detector-input dimensions of the whole frame; each cell covers
/// (frame_w / grid_w) x (frame_h / grid_h) pixels.
///
/// `sizes` must contain the full-frame size (w >= frame_w, h >= frame_h) so
/// the full-frame fallback is always available.
GroupingResult GroupCells(const CellGrid& grid,
                          const std::vector<WindowSize>& sizes,
                          const models::DetectorArch& arch, double frame_w,
                          double frame_h);

/// Converts placed windows into native-coordinate rectangles for detection
/// filtering. `scale` maps scaled-frame coordinates back to native
/// (native = scaled / scale).
std::vector<geom::BBox> WindowsToNativeRects(
    const GroupingResult& grouping, double frame_w, double frame_h,
    int grid_w, int grid_h, double scale);

}  // namespace otif::core

#endif  // OTIF_CORE_CELL_GROUPING_H_
