#include "core/best_config.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/executor/streaming_executor.h"
#include "obs/run_progress.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/trace_timeline.h"

namespace otif::core {

EvalResult EvaluateConfig(const PipelineConfig& config,
                          const TrainedModels* trained,
                          const std::vector<sim::Clip>& clips,
                          const AccuracyFn& accuracy_fn) {
  Pipeline pipeline(config, trained);
  // Register the sweep with the live-progress registry (no-op when
  // introspection is off): one run generation per EvaluateConfig call,
  // totals in sampled frames per clip (what Pipeline::Run commits).
  if (obs::ProgressEnabled()) {
    std::vector<int64_t> totals;
    totals.reserve(clips.size());
    for (const sim::Clip& clip : clips) {
      totals.push_back((clip.num_frames() + config.sampling_gap - 1) /
                       config.sampling_gap);
    }
    obs::RunProgress::Global().BeginRun("serial", std::move(totals));
  }
  // Clips are independent; run them across the worker pool. Results come
  // back ordered by clip index, and the simulated clock keeps independent
  // per-category accumulators, so merging in clip order reproduces the
  // serial totals bit-for-bit.
  std::vector<PipelineResult> per_clip =
      ParallelMap(ThreadPool::Default(), static_cast<int64_t>(clips.size()),
                  [&](int64_t i) {
                    // Tag this task's timeline events with the clip index
                    // (the tuner and harness evaluations all funnel here).
                    telemetry::timeline::ScopedContext ctx({.clip = i});
                    return pipeline.Run(clips[static_cast<size_t>(i)]);
                  });
  if (obs::ProgressEnabled()) obs::RunProgress::Global().EndRun();
  EvalResult result;
  for (PipelineResult& r : per_clip) {
    result.clock.Merge(r.clock);
    result.tracks_per_clip.push_back(std::move(r.tracks));
  }
  result.seconds = result.clock.TotalSeconds();
  result.accuracy = accuracy_fn(result.tracks_per_clip);
  return result;
}

const char* ExecutorKindName(ExecutorKind kind) {
  return kind == ExecutorKind::kStreaming ? "streaming" : "serial";
}

ExecutorKind ExecutorKindFromEnv() {
  const char* value = std::getenv("OTIF_EXECUTOR");
  if (value == nullptr || *value == '\0') return ExecutorKind::kStreaming;
  if (std::strcmp(value, "streaming") == 0) return ExecutorKind::kStreaming;
  if (std::strcmp(value, "serial") == 0) return ExecutorKind::kSerial;
  OTIF_LOG(kWarning) << "OTIF_EXECUTOR=\"" << value
                     << "\" is not \"serial\" or \"streaming\"; using "
                        "the streaming executor";
  return ExecutorKind::kStreaming;
}

EvalResult EvaluateConfigWith(ExecutorKind kind, const PipelineConfig& config,
                              const TrainedModels* trained,
                              const std::vector<sim::Clip>& clips,
                              const AccuracyFn& accuracy_fn) {
  if (kind == ExecutorKind::kSerial) {
    return EvaluateConfig(config, trained, clips, accuracy_fn);
  }
  StreamingExecutor executor(config, trained, StreamingOptionsFromEnv());
  StatusOr<StreamingRunReport> report = executor.Run(clips);
  // The serial path CHECKs the same config invariants in the Pipeline
  // constructor, and nothing cancels this executor — a failure here is a
  // programming error, not a recoverable condition.
  OTIF_CHECK(report.ok()) << report.status().ToString();
  if (!report->failed_clips.empty()) {
    // Quarantined clips (fault runs only) contribute empty track lists, so
    // the accuracy below understates the config. Config search under
    // injected faults is a chaos exercise, not a measurement — warn.
    OTIF_LOG(kWarning) << "config evaluation: " << report->failed_clips.size()
                       << " clip(s) quarantined; accuracy is a lower bound";
  }
  EvalResult result;
  for (PipelineResult& r : report->results) {
    result.clock.Merge(r.clock);
    result.tracks_per_clip.push_back(std::move(r.tracks));
  }
  result.seconds = result.clock.TotalSeconds();
  result.accuracy = accuracy_fn(result.tracks_per_clip);
  return result;
}

PipelineConfig SelectBestConfig(const std::vector<sim::Clip>& validation,
                                const AccuracyFn& accuracy_fn,
                                double* best_accuracy_out) {
  OTIF_CHECK(!validation.empty());
  // Slowest configuration: strongest architecture at full resolution,
  // gap 1, SORT tracker, no proxy.
  PipelineConfig config;
  config.detector_arch = "mask_rcnn";
  config.detector_scale = 1.0;
  config.sampling_gap = 1;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = false;

  double best_acc =
      EvaluateConfig(config, nullptr, validation, accuracy_fn).accuracy;

  // Architectures are entangled with resolution in the detection module; at
  // this stage pick the better architecture at full resolution.
  {
    PipelineConfig alt = config;
    alt.detector_arch = "yolov3";
    const double acc =
        EvaluateConfig(alt, nullptr, validation, accuracy_fn).accuracy;
    if (acc >= best_acc) {
      config = alt;
      best_acc = acc;
    }
  }

  // Walk down the resolution ladder while accuracy does not decrease.
  const std::vector<double> scales = StandardDetectorScales();
  size_t scale_idx = 0;
  while (scale_idx + 1 < scales.size()) {
    PipelineConfig next = config;
    next.detector_scale = scales[scale_idx + 1];
    const double acc =
        EvaluateConfig(next, nullptr, validation, accuracy_fn).accuracy;
    if (acc < best_acc) break;
    config = next;
    best_acc = acc;
    ++scale_idx;
  }

  // Then walk up the sampling gap while accuracy does not decrease.
  while (config.sampling_gap < 64) {
    PipelineConfig next = config;
    next.sampling_gap *= 2;
    const double acc =
        EvaluateConfig(next, nullptr, validation, accuracy_fn).accuracy;
    if (acc < best_acc) break;
    config = next;
    best_acc = acc;
  }

  if (best_accuracy_out != nullptr) *best_accuracy_out = best_acc;
  return config;
}

}  // namespace otif::core
