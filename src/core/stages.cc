#include "core/stages.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "track/metrics.h"
#include "track/sort_tracker.h"
#include "util/logging.h"
#include "util/trace.h"

namespace otif::core {
namespace {

// GOP size assumed for decode-cost accounting; matches the default
// video::CodecConfig.
constexpr int kGopSize = 16;

// Frames per batched model invocation, recorded at the point the model is
// actually invoked (so the serial driver and the streaming executor's
// cross-clip batcher report through the same histograms; the streaming
// release records once for the whole multi-clip wave instead).
telemetry::Histogram* ProxyInvocationFrames() {
  static telemetry::Histogram* const h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "proxy.invocation_frames",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return h;
}

telemetry::Histogram* DetectInvocationFrames() {
  static telemetry::Histogram* const h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "detect.invocation_frames",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return h;
}

}  // namespace

double SimulatedDecodeSeconds(const PipelineConfig& config,
                              const sim::Clip& clip) {
  const models::CostConstants& costs = models::DefaultCostConstants();
  const int g = config.sampling_gap;
  const int samples = (clip.num_frames() + g - 1) / g;
  // Reference chains: with g below the GOP size every frame must be
  // decoded; above it, seeking to the preceding I-frame decodes an average
  // of GOP/2 + 1 frames per sample.
  const double frames_per_sample =
      g < kGopSize ? static_cast<double>(g)
                   : static_cast<double>(kGopSize) / 2.0 + 1.0;
  const double frames_decoded = samples * frames_per_sample;
  // Frames are decoded at the detector resolution (paper Sec 4).
  const double px_per_frame = static_cast<double>(clip.spec().width) *
                              clip.spec().height * config.detector_scale *
                              config.detector_scale;
  return frames_decoded * (costs.decode_sec_per_frame +
                           px_per_frame * costs.decode_sec_per_pixel);
}

// --- DecodeStage ------------------------------------------------------------

DecodeStage::DecodeStage(const PipelineConfig& config, const sim::Clip& clip)
    : config_(config), clip_(clip) {}

void DecodeStage::BeginClip(PipelineResult* result) {
  result->clock.Charge(models::CostCategory::kDecode,
                       SimulatedDecodeSeconds(config_, clip_));
}

void DecodeStage::ProcessFrame(FrameContext* ctx, PipelineResult* result) {
  // Sampled frames arrive already decoded; the cost is clip-level.
  (void)ctx;
  (void)result;
}

// --- ProxyStage -------------------------------------------------------------

ProxyStage::ProxyStage(const PipelineConfig& config,
                       const TrainedModels* trained, const sim::Clip& clip,
                       const models::DetectorArch& arch,
                       sim::Rasterizer* raster)
    : config_(config),
      trained_(config.use_proxy ? trained : nullptr),
      clip_(clip),
      arch_(arch),
      raster_(raster) {
  if (trained_ == nullptr) return;
  proxy_ = trained_->proxies[static_cast<size_t>(
                                 config_.proxy_resolution_index)]
               .get();
  const double scale = config_.detector_scale;
  for (const WindowSize& s : trained_->window_sizes) {
    scaled_sizes_.push_back(
        WindowSize{static_cast<int>(std::ceil(s.w * scale)),
                   static_cast<int>(std::ceil(s.h * scale))});
  }
  scaled_w_ = clip_.spec().width * scale;
  scaled_h_ = clip_.spec().height * scale;
}

void ProxyStage::ChargeFrame(PipelineResult* result) {
  const models::CostConstants& costs = models::DefaultCostConstants();
  result->clock.Charge(
      models::CostCategory::kProxy,
      costs.proxy_sec_per_frame +
          costs.proxy_sec_per_pixel * proxy_->resolution().world_pixels());
}

void ProxyStage::ComputeWindows(const nn::Tensor& scores, FrameContext* ctx) {
  ctx->proxy_ran = true;
  const CellGrid grid = CellGrid::FromScores(scores, config_.proxy_threshold);
  if (grid.CountPositive() == 0) {
    // Nothing in the frame: downstream stages skip the detector entirely.
    ctx->skip_detector = true;
    return;
  }
  OTIF_SPAN("proxy/group_cells");
  const GroupingResult grouping =
      GroupCells(grid, scaled_sizes_, arch_, scaled_w_, scaled_h_);
  ctx->windowed_detect_seconds = grouping.est_seconds;
  ctx->window_sizes.reserve(grouping.windows.size());
  for (const PlacedWindow& w : grouping.windows) {
    ctx->window_sizes.push_back(w.size);
  }
  ctx->windows = WindowsToNativeRects(grouping, scaled_w_, scaled_h_,
                                      grid.grid_w, grid.grid_h,
                                      config_.detector_scale);
}

void ProxyStage::ProcessFrame(FrameContext* ctx, PipelineResult* result) {
  if (proxy_ == nullptr) return;
  {
    OTIF_SPAN("proxy/render");
    raster_->RenderInto(ctx->frame, proxy_->resolution().raster_w(),
                        proxy_->resolution().raster_h(), &ctx->low_res_frame);
  }
  ctx->have_low_res_frame = true;
  // Cell scores are cached across tuner evaluations (many thresholds score
  // the same frames); the cache is shared and thread-safe.
  const ProxyScoreCache::Key key = std::make_tuple(
      clip_.clip_seed(), ctx->frame, config_.proxy_resolution_index);
  const nn::Tensor scores = [&] {
    OTIF_SPAN("proxy/score");
    return trained_->proxy_cache.GetOrCompute(
        key, [&] { return proxy_->Score(ctx->low_res_frame); });
  }();
  ChargeFrame(result);
  ComputeWindows(scores, ctx);
}

void ProxyStage::ComputeBatch(const std::vector<FrameContext*>& batch) {
  if (proxy_ == nullptr) return;
  // Render every frame up front so the cache misses can be scored in one
  // batched network invocation.
  for (FrameContext* ctx : batch) {
    OTIF_SPAN("proxy/render");
    raster_->RenderInto(ctx->frame, proxy_->resolution().raster_w(),
                        proxy_->resolution().raster_h(), &ctx->low_res_frame);
    ctx->have_low_res_frame = true;
  }

  std::vector<nn::Tensor> scores(batch.size());
  std::vector<size_t> missing;
  {
    OTIF_SPAN("proxy/score");
    for (size_t i = 0; i < batch.size(); ++i) {
      const ProxyScoreCache::Key key =
          std::make_tuple(clip_.clip_seed(), batch[i]->frame,
                          config_.proxy_resolution_index);
      if (!trained_->proxy_cache.Lookup(key, &scores[i])) missing.push_back(i);
    }
    if (!missing.empty()) {
      std::vector<const video::Image*> frames;
      frames.reserve(missing.size());
      for (size_t i : missing) frames.push_back(&batch[i]->low_res_frame);
      std::vector<nn::Tensor> fresh;
      if (score_batch_fn_) {
        fresh = score_batch_fn_(*proxy_, frames);
      } else {
        fresh = proxy_->ScoreBatch(frames);
        if (telemetry::Enabled()) {
          ProxyInvocationFrames()->Record(
              static_cast<double>(frames.size()));
        }
      }
      for (size_t m = 0; m < missing.size(); ++m) {
        const size_t i = missing[m];
        const ProxyScoreCache::Key key =
            std::make_tuple(clip_.clip_seed(), batch[i]->frame,
                            config_.proxy_resolution_index);
        scores[i] =
            trained_->proxy_cache.Insert(key, std::move(fresh[m]));
      }
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    ComputeWindows(scores[i], batch[i]);
  }
}

void ProxyStage::CommitBatch(const std::vector<FrameContext*>& batch,
                             PipelineResult* result) {
  if (proxy_ == nullptr) return;
  // One fixed charge per frame, in frame order — the same kProxy
  // accumulation sequence the per-frame path produces. Frames whose proxy
  // computation never ran (a degraded clip falling back to full-frame
  // detection) charge nothing; in normal operation ComputeBatch marks
  // every frame, so this guard never changes the charge sequence.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->proxy_ran) ChargeFrame(result);
  }
}

void ProxyStage::ProcessBatch(const std::vector<FrameContext*>& batch,
                              PipelineResult* result) {
  ComputeBatch(batch);
  CommitBatch(batch, result);
}

// --- DetectStage ------------------------------------------------------------

DetectStage::DetectStage(const PipelineConfig& config, const sim::Clip& clip,
                         const models::DetectorArch& arch)
    : config_(config), clip_(clip), detector_(arch) {}

void DetectStage::ProcessFrame(FrameContext* ctx, PipelineResult* result) {
  const double scale = config_.detector_scale;
  if (ctx->proxy_ran) {
    if (ctx->skip_detector) {
      coverage_sum_ += 1.0;
      ++coverage_frames_;
    } else {
      result->clock.Charge(models::CostCategory::kDetect,
                           ctx->windowed_detect_seconds);
      ctx->detections = models::FilterByWindows(
          detector_.Detect(clip_, ctx->frame, scale), ctx->windows);
      coverage_sum_ += track::DetectionCoverage(
          clip_.GroundTruthDetections(ctx->frame), ctx->windows);
      ++coverage_frames_;
    }
  } else {
    result->clock.Charge(models::CostCategory::kDetect,
                         detector_.FullFrameSeconds(clip_, scale));
    ctx->detections = detector_.Detect(clip_, ctx->frame, scale);
  }

  ctx->detections =
      models::FilterByConfidence(ctx->detections, config_.detector_confidence);
  result->detections_kept += static_cast<int64_t>(ctx->detections.size());
}

void DetectStage::ComputeBatch(const std::vector<FrameContext*>& batch) {
  const double scale = config_.detector_scale;

  // Partition the batch: windowed frames and full frames become batched
  // detector invocations; proxy-empty frames skip the detector.
  std::vector<FrameContext*> windowed, full;
  for (FrameContext* ctx : batch) {
    if (ctx->proxy_ran) {
      if (!ctx->skip_detector) windowed.push_back(ctx);
    } else {
      full.push_back(ctx);
    }
  }

  const auto invoke = [&](const std::vector<int>& frames) {
    if (detect_batch_fn_) return detect_batch_fn_(detector_, clip_, frames,
                                                  scale);
    if (telemetry::Enabled()) {
      DetectInvocationFrames()->Record(static_cast<double>(frames.size()));
    }
    return detector_.DetectBatch(clip_, frames, scale);
  };

  if (!windowed.empty()) {
    std::vector<int> frames;
    frames.reserve(windowed.size());
    for (FrameContext* ctx : windowed) frames.push_back(ctx->frame);
    const std::vector<track::FrameDetections> dets = invoke(frames);
    for (size_t i = 0; i < windowed.size(); ++i) {
      windowed[i]->detections =
          models::FilterByWindows(dets[i], windowed[i]->windows);
    }
  }

  if (!full.empty()) {
    std::vector<int> frames;
    frames.reserve(full.size());
    for (FrameContext* ctx : full) frames.push_back(ctx->frame);
    std::vector<track::FrameDetections> dets = invoke(frames);
    for (size_t i = 0; i < full.size(); ++i) {
      full[i]->detections = std::move(dets[i]);
    }
  }

  // Per-frame coverage value and the confidence filter, in frame order.
  // Coverage is stored on the context and accumulated at commit time so
  // the per-clip sum keeps the serial accumulation order.
  for (FrameContext* ctx : batch) {
    if (ctx->proxy_ran) {
      ctx->window_coverage =
          ctx->skip_detector
              ? 1.0
              : track::DetectionCoverage(
                    clip_.GroundTruthDetections(ctx->frame), ctx->windows);
    }
    ctx->detections = models::FilterByConfidence(ctx->detections,
                                                 config_.detector_confidence);
  }
}

void DetectStage::CommitBatch(const std::vector<FrameContext*>& batch,
                              PipelineResult* result) {
  const double scale = config_.detector_scale;
  const models::DetectorArch& arch = detector_.arch();

  // Charges follow the serial grouping: one windowed charge and one
  // full-frame charge per frame_batch group, independent of how the
  // compute half actually batched the model invocations. This is the
  // invariant that makes cross-clip batching cost-neutral.
  std::vector<FrameContext*> windowed, full;
  for (FrameContext* ctx : batch) {
    if (ctx->proxy_ran) {
      if (!ctx->skip_detector) windowed.push_back(ctx);
    } else {
      full.push_back(ctx);
    }
  }

  if (!windowed.empty()) {
    // Windows come from the fixed trained size set W, so the batch's
    // windows group into few distinct shapes; each shape batches into one
    // detector invocation (uniform input shape), amortizing the
    // per-invocation overhead that the unbatched path pays per window.
    double pixel_seconds = 0.0;
    std::vector<WindowSize> shapes;
    for (FrameContext* ctx : windowed) {
      for (const WindowSize& s : ctx->window_sizes) {
        pixel_seconds +=
            arch.sec_per_pixel * static_cast<double>(s.w) * s.h;
        if (std::find(shapes.begin(), shapes.end(), s) == shapes.end()) {
          shapes.push_back(s);
        }
      }
    }
    result->clock.Charge(
        models::CostCategory::kDetect,
        pixel_seconds +
            arch.sec_per_invocation * static_cast<double>(shapes.size()));
  }

  if (!full.empty()) {
    // Full frames all share one input shape: one invocation for the batch.
    const double pixel_seconds_per_frame =
        arch.sec_per_pixel * clip_.spec().width * scale *
        clip_.spec().height * scale;
    result->clock.Charge(
        models::CostCategory::kDetect,
        pixel_seconds_per_frame * static_cast<double>(full.size()) +
            arch.sec_per_invocation);
  }

  // Coverage and the kept-detections counter accumulate in frame order,
  // exactly as the per-frame path would.
  for (FrameContext* ctx : batch) {
    if (ctx->proxy_ran) {
      coverage_sum_ += ctx->window_coverage;
      ++coverage_frames_;
    }
    result->detections_kept += static_cast<int64_t>(ctx->detections.size());
  }
}

void DetectStage::ProcessBatch(const std::vector<FrameContext*>& batch,
                               PipelineResult* result) {
  ComputeBatch(batch);
  CommitBatch(batch, result);
}

void DetectStage::EndClip(PipelineResult* result) {
  result->mean_window_coverage =
      coverage_frames_ > 0 ? coverage_sum_ / coverage_frames_ : 1.0;
}

// --- TrackStage -------------------------------------------------------------

TrackStage::TrackStage(const PipelineConfig& config,
                       const TrainedModels* trained, const sim::Clip& clip,
                       sim::Rasterizer* raster)
    : config_(config), clip_(clip), raster_(raster) {
  const sim::DatasetSpec& spec = clip_.spec();
  if (config_.tracker == TrackerKind::kSort) {
    sort_tracker_ = std::make_unique<track::SortTracker>();
  } else {
    track::RecurrentTracker::Options opts;
    opts.frame_w = spec.width;
    opts.frame_h = spec.height;
    opts.fps = spec.fps;
    recurrent_tracker_ = std::make_unique<track::RecurrentTracker>(
        trained->tracker_net.get(), opts);
  }
}

void TrackStage::ProcessFrame(FrameContext* ctx, PipelineResult* result) {
  const models::CostConstants& costs = models::DefaultCostConstants();
  const track::FrameDetections& dets = ctx->detections;

  if (sort_tracker_ != nullptr) {
    result->clock.Charge(
        models::CostCategory::kTrack,
        costs.sort_sec_per_detection * static_cast<double>(dets.size()));
    sort_tracker_->ProcessFrame(ctx->frame, dets);
    return;
  }

  // Appearance statistics from a low-res render (reuse the proxy stage's
  // when available; otherwise render at the smallest standard proxy
  // resolution — charged as tracker time).
  const sim::DatasetSpec& spec = clip_.spec();
  if (!ctx->have_low_res_frame) {
    raster_->RenderInto(ctx->frame, 40, 24, &ctx->low_res_frame);
    ctx->have_low_res_frame = true;
  }
  std::vector<std::pair<double, double>> appearance;
  appearance.reserve(dets.size());
  for (const track::Detection& d : dets) {
    appearance.push_back(models::TrackerNet::AppearanceStats(
        ctx->low_res_frame, d.box, spec.width, spec.height));
  }
  const int64_t pairs_before = recurrent_tracker_->pair_scores_computed();
  recurrent_tracker_->ProcessFrameWithAppearance(ctx->frame, dets, appearance);
  const int64_t pairs =
      recurrent_tracker_->pair_scores_computed() - pairs_before;
  result->clock.Charge(
      models::CostCategory::kTrack,
      costs.track_sec_per_frame +
          costs.track_sec_per_detection *
              static_cast<double>(dets.size() + pairs / 4));
}

void TrackStage::EndClip(PipelineResult* result) {
  track::Tracker* tracker =
      sort_tracker_ != nullptr
          ? static_cast<track::Tracker*>(sort_tracker_.get())
          : recurrent_tracker_.get();
  // Paper Sec 3.4: prune single-detection tracks as likely noise.
  result->tracks = tracker->Finish(2);
}

// --- RefineStage ------------------------------------------------------------

RefineStage::RefineStage(const PipelineConfig& config,
                         const TrainedModels* trained, const sim::Clip& clip)
    : config_(config), trained_(trained), clip_(clip) {}

void RefineStage::ProcessFrame(FrameContext* ctx, PipelineResult* result) {
  // Refinement is a clip-level post-pass over finished tracks.
  (void)ctx;
  (void)result;
}

void RefineStage::EndClip(PipelineResult* result) {
  if (!config_.refine || trained_ == nullptr ||
      trained_->refiner == nullptr || clip_.spec().moving_camera) {
    return;
  }
  const models::CostConstants& costs = models::DefaultCostConstants();
  OTIF_SPAN("refine/refine_all");
  result->tracks = trained_->refiner->RefineAll(result->tracks);
  result->clock.Charge(
      models::CostCategory::kRefine,
      costs.refine_sec_per_track * static_cast<double>(result->tracks.size()));
}

}  // namespace otif::core
