#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "track/metrics.h"
#include "track/recurrent_tracker.h"
#include "track/sort_tracker.h"
#include "util/logging.h"
#include "util/strings.h"

namespace otif::core {
namespace {

// GOP size assumed for decode-cost accounting; matches the default
// video::CodecConfig.
constexpr int kGopSize = 16;

}  // namespace

std::string PipelineConfig::ToString() const {
  return StrFormat(
      "arch=%s scale=%.2f conf=%.2f proxy=%s(res=%d thr=%.2f) gap=%d "
      "tracker=%s refine=%d",
      detector_arch.c_str(), detector_scale, detector_confidence,
      use_proxy ? "on" : "off", proxy_resolution_index, proxy_threshold,
      sampling_gap, tracker == TrackerKind::kSort ? "sort" : "recurrent",
      refine ? 1 : 0);
}

std::vector<double> StandardDetectorScales() {
  // Each step multiplies pixel count by 0.7 (the tuning coarseness C=30%).
  std::vector<double> scales;
  double s = 1.0;
  for (int i = 0; i < 10; ++i) {
    scales.push_back(s);
    s *= std::sqrt(0.7);
  }
  return scales;
}

std::vector<double> StandardProxyThresholds() {
  return {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

Pipeline::Pipeline(PipelineConfig config, const TrainedModels* trained)
    : config_(std::move(config)), trained_(trained) {
  OTIF_CHECK_GE(config_.sampling_gap, 1);
  OTIF_CHECK_GT(config_.detector_scale, 0.0);
  OTIF_CHECK_LE(config_.detector_scale, 1.0);
  if (trained_ == nullptr) {
    OTIF_CHECK(!config_.use_proxy);
    OTIF_CHECK(config_.tracker == TrackerKind::kSort);
    OTIF_CHECK(!config_.refine);
  } else if (config_.use_proxy) {
    OTIF_CHECK_LT(static_cast<size_t>(config_.proxy_resolution_index),
                  trained_->proxies.size());
    OTIF_CHECK(!trained_->window_sizes.empty());
  }
}

double Pipeline::DecodeSecondsForClip(const sim::Clip& clip) const {
  const models::CostConstants& costs = models::DefaultCostConstants();
  const int g = config_.sampling_gap;
  const int samples = (clip.num_frames() + g - 1) / g;
  // Reference chains: with g below the GOP size every frame must be
  // decoded; above it, seeking to the preceding I-frame decodes an average
  // of GOP/2 + 1 frames per sample.
  const double frames_per_sample =
      g < kGopSize ? static_cast<double>(g)
                   : static_cast<double>(kGopSize) / 2.0 + 1.0;
  const double frames_decoded = samples * frames_per_sample;
  // Frames are decoded at the detector resolution (paper Sec 4).
  const double px_per_frame = static_cast<double>(clip.spec().width) *
                              clip.spec().height * config_.detector_scale *
                              config_.detector_scale;
  return frames_decoded *
         (costs.decode_sec_per_frame + px_per_frame * costs.decode_sec_per_pixel);
}

PipelineResult Pipeline::Run(const sim::Clip& clip) const {
  const models::CostConstants& costs = models::DefaultCostConstants();
  const sim::DatasetSpec& spec = clip.spec();
  PipelineResult result;
  result.clock.Charge(models::CostCategory::kDecode,
                      DecodeSecondsForClip(clip));

  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), config_.detector_arch);
  models::SimulatedDetector detector(arch);
  const double scale = config_.detector_scale;

  // Scaled window sizes for this detector resolution (W is selected in
  // native coordinates; windows shrink with the frame).
  std::vector<WindowSize> scaled_sizes;
  models::ProxyModel* proxy = nullptr;
  if (config_.use_proxy) {
    proxy = trained_->proxies[static_cast<size_t>(
                                  config_.proxy_resolution_index)]
                .get();
    for (const WindowSize& s : trained_->window_sizes) {
      scaled_sizes.push_back(
          WindowSize{static_cast<int>(std::ceil(s.w * scale)),
                     static_cast<int>(std::ceil(s.h * scale))});
    }
  }

  std::unique_ptr<track::Tracker> sort_tracker;
  std::unique_ptr<track::RecurrentTracker> recurrent_tracker;
  if (config_.tracker == TrackerKind::kSort) {
    sort_tracker = std::make_unique<track::SortTracker>();
  } else {
    track::RecurrentTracker::Options opts;
    opts.frame_w = spec.width;
    opts.frame_h = spec.height;
    opts.fps = spec.fps;
    recurrent_tracker = std::make_unique<track::RecurrentTracker>(
        trained_->tracker_net.get(), opts);
  }

  sim::Rasterizer raster(&clip);
  const double scaled_w = spec.width * scale;
  const double scaled_h = spec.height * scale;
  double coverage_sum = 0.0;
  int coverage_frames = 0;

  for (int f = 0; f < clip.num_frames(); f += config_.sampling_gap) {
    ++result.frames_processed;
    track::FrameDetections dets;
    video::Image proxy_frame;  // Low-res render reused for appearance.
    bool have_raster = false;

    if (proxy != nullptr) {
      // Score cells (cached across tuner evaluations), then group into
      // windows and run the detector only inside them.
      const auto key = std::make_tuple(clip.clip_seed(), f,
                                       config_.proxy_resolution_index);
      auto it = trained_->proxy_cache.find(key);
      nn::Tensor scores;
      proxy_frame = raster.Render(f, proxy->resolution().raster_w(),
                                  proxy->resolution().raster_h());
      have_raster = true;
      if (it != trained_->proxy_cache.end()) {
        scores = it->second;
      } else {
        scores = proxy->Score(proxy_frame);
        trained_->proxy_cache.emplace(key, scores);
      }
      result.clock.Charge(
          models::CostCategory::kProxy,
          costs.proxy_sec_per_frame +
              costs.proxy_sec_per_pixel * proxy->resolution().world_pixels());

      const CellGrid grid =
          CellGrid::FromScores(scores, config_.proxy_threshold);
      if (grid.CountPositive() == 0) {
        // Nothing in the frame: skip the detector entirely.
        coverage_sum += 1.0;
        ++coverage_frames;
      } else {
        const GroupingResult grouping =
            GroupCells(grid, scaled_sizes, arch, scaled_w, scaled_h);
        result.clock.Charge(models::CostCategory::kDetect,
                            grouping.est_seconds);
        const std::vector<geom::BBox> rects = WindowsToNativeRects(
            grouping, scaled_w, scaled_h, grid.grid_w, grid.grid_h, scale);
        dets = models::FilterByWindows(detector.Detect(clip, f, scale), rects);
        coverage_sum +=
            track::DetectionCoverage(clip.GroundTruthDetections(f), rects);
        ++coverage_frames;
      }
    } else {
      result.clock.Charge(models::CostCategory::kDetect,
                          detector.FullFrameSeconds(clip, scale));
      dets = detector.Detect(clip, f, scale);
    }

    dets = models::FilterByConfidence(dets, config_.detector_confidence);
    result.detections_kept += static_cast<int64_t>(dets.size());

    if (sort_tracker != nullptr) {
      result.clock.Charge(
          models::CostCategory::kTrack,
          costs.sort_sec_per_detection * static_cast<double>(dets.size()));
      sort_tracker->ProcessFrame(f, dets);
    } else {
      // Appearance statistics from a low-res render (reuse the proxy frame
      // when available; otherwise render at the smallest standard proxy
      // resolution — charged as tracker time).
      if (!have_raster) {
        proxy_frame = raster.Render(f, 40, 24);
      }
      std::vector<std::pair<double, double>> appearance;
      appearance.reserve(dets.size());
      for (const track::Detection& d : dets) {
        appearance.push_back(models::TrackerNet::AppearanceStats(
            proxy_frame, d.box, spec.width, spec.height));
      }
      const int64_t pairs_before = recurrent_tracker->pair_scores_computed();
      recurrent_tracker->ProcessFrameWithAppearance(f, dets, appearance);
      const int64_t pairs = recurrent_tracker->pair_scores_computed() -
                            pairs_before;
      result.clock.Charge(
          models::CostCategory::kTrack,
          costs.track_sec_per_frame +
              costs.track_sec_per_detection *
                  static_cast<double>(dets.size() + pairs / 4));
    }
  }

  track::Tracker* tracker = sort_tracker != nullptr
                                ? static_cast<track::Tracker*>(sort_tracker.get())
                                : recurrent_tracker.get();
  // Paper Sec 3.4: prune single-detection tracks as likely noise.
  result.tracks = tracker->Finish(2);

  if (config_.refine && trained_ != nullptr &&
      trained_->refiner != nullptr && !spec.moving_camera) {
    result.tracks = trained_->refiner->RefineAll(result.tracks);
    result.clock.Charge(
        models::CostCategory::kRefine,
        costs.refine_sec_per_track * static_cast<double>(result.tracks.size()));
  }

  result.mean_window_coverage =
      coverage_frames > 0 ? coverage_sum / coverage_frames : 1.0;
  return result;
}

}  // namespace otif::core
