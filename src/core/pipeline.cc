#include "core/pipeline.h"

#include <cmath>
#include <utility>

#include "core/stages.h"
#include "util/logging.h"
#include "util/strings.h"

namespace otif::core {

std::string PipelineConfig::ToString() const {
  return StrFormat(
      "arch=%s scale=%.2f conf=%.2f proxy=%s(res=%d thr=%.2f) gap=%d "
      "tracker=%s refine=%d",
      detector_arch.c_str(), detector_scale, detector_confidence,
      use_proxy ? "on" : "off", proxy_resolution_index, proxy_threshold,
      sampling_gap, tracker == TrackerKind::kSort ? "sort" : "recurrent",
      refine ? 1 : 0);
}

std::vector<double> StandardDetectorScales() {
  // Each step multiplies pixel count by 0.7 (the tuning coarseness C=30%).
  std::vector<double> scales;
  double s = 1.0;
  for (int i = 0; i < 10; ++i) {
    scales.push_back(s);
    s *= std::sqrt(0.7);
  }
  return scales;
}

std::vector<double> StandardProxyThresholds() {
  return {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

Pipeline::Pipeline(PipelineConfig config, const TrainedModels* trained)
    : config_(std::move(config)), trained_(trained) {
  OTIF_CHECK_GE(config_.sampling_gap, 1);
  OTIF_CHECK_GT(config_.detector_scale, 0.0);
  OTIF_CHECK_LE(config_.detector_scale, 1.0);
  if (trained_ == nullptr) {
    OTIF_CHECK(!config_.use_proxy);
    OTIF_CHECK(config_.tracker == TrackerKind::kSort);
    OTIF_CHECK(!config_.refine);
  } else if (config_.use_proxy) {
    OTIF_CHECK_LT(static_cast<size_t>(config_.proxy_resolution_index),
                  trained_->proxies.size());
    OTIF_CHECK(!trained_->window_sizes.empty());
  }
}

double Pipeline::DecodeSecondsForClip(const sim::Clip& clip) const {
  return SimulatedDecodeSeconds(config_, clip);
}

PipelineResult Pipeline::Run(const sim::Clip& clip) const {
  PipelineResult result;
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), config_.detector_arch);
  // Per-run render service shared by the proxy and tracking stages (its
  // background cache makes it non-reentrant, so it must not outlive the run).
  sim::Rasterizer raster(&clip);

  // The stage sequence (paper Fig 2). Stages are per-run scoped and
  // communicate only through the FrameContext and the result clock.
  DecodeStage decode(config_, clip);
  ProxyStage proxy(config_, trained_, clip, arch, &raster);
  DetectStage detect(config_, clip, arch);
  TrackStage track(config_, trained_, clip, &raster);
  RefineStage refine(config_, trained_, clip);
  Stage* const stages[] = {&decode, &proxy, &detect, &track, &refine};

  for (Stage* stage : stages) stage->BeginClip(&result);
  for (int f = 0; f < clip.num_frames(); f += config_.sampling_gap) {
    ++result.frames_processed;
    FrameContext ctx;
    ctx.frame = f;
    for (Stage* stage : stages) stage->ProcessFrame(&ctx, &result);
  }
  for (Stage* stage : stages) stage->EndClip(&result);
  return result;
}

}  // namespace otif::core
