#include "core/pipeline.h"

#include <array>
#include <cmath>
#include <string>
#include <utility>

#include "core/stages.h"
#include "obs/run_progress.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::core {
namespace {

/// Telemetry for one pipeline stage: a wall-clock span (driver-measured,
/// covers BeginClip + per-frame work + EndClip) and a simulated-seconds
/// accumulator fed from the run's SimClock. The five stages map 1:1 onto
/// the first five cost categories, so Figure 6's breakdown and the live
/// instrumentation read the same accumulators.
struct StageTelemetry {
  telemetry::SpanSite* span;
  telemetry::Gauge* sim_seconds;
};

constexpr int kNumStages = internal::kNumStages;

const std::array<StageTelemetry, kNumStages>& GetStageTelemetry() {
  static const std::array<StageTelemetry, kNumStages> stages = [] {
    std::array<StageTelemetry, kNumStages> out;
    for (int i = 0; i < kNumStages; ++i) {
      const char* name =
          models::CostCategoryName(static_cast<models::CostCategory>(i));
      out[static_cast<size_t>(i)] = {
          telemetry::GetSpan(std::string("stage/") + name),
          telemetry::MetricsRegistry::Global().GetGauge(
              std::string("stage/") + name + ".sim_seconds")};
    }
    return out;
  }();
  return stages;
}

/// Run-level aggregates (per clip and across clips/configs).
struct RunTelemetry {
  telemetry::Counter* runs;
  telemetry::Counter* frames;
  telemetry::Counter* detections_kept;
  telemetry::Histogram* run_sim_seconds;
};

const RunTelemetry& GetRunTelemetry() {
  static const RunTelemetry t{
      telemetry::MetricsRegistry::Global().GetCounter("pipeline.runs"),
      telemetry::MetricsRegistry::Global().GetCounter("pipeline.frames"),
      telemetry::MetricsRegistry::Global().GetCounter(
          "pipeline.detections_kept"),
      telemetry::MetricsRegistry::Global().GetHistogram(
          "pipeline.run_sim_seconds"),
  };
  return t;
}

}  // namespace

namespace internal {

telemetry::SpanSite* StageSpan(int stage) {
  return GetStageTelemetry()[static_cast<size_t>(stage)].span;
}

/// Folds one finished run into the global registry. Observation only: must
/// never influence the result (the telemetry on/off regression test pins
/// this down).
void RecordRunTelemetry(const PipelineResult& result) {
  const auto& stages = GetStageTelemetry();
  for (int i = 0; i < kNumStages; ++i) {
    const double sec =
        result.clock.Seconds(static_cast<models::CostCategory>(i));
    if (sec > 0.0) stages[static_cast<size_t>(i)].sim_seconds->Add(sec);
  }
  const RunTelemetry& t = GetRunTelemetry();
  t.runs->Add(1);
  t.frames->Add(result.frames_processed);
  t.detections_kept->Add(result.detections_kept);
  t.run_sim_seconds->Record(result.clock.TotalSeconds());
}

}  // namespace internal

std::string PipelineConfig::ToString() const {
  return StrFormat(
      "arch=%s scale=%.2f conf=%.2f proxy=%s(res=%d thr=%.2f) gap=%d "
      "batch=%d tracker=%s refine=%d",
      detector_arch.c_str(), detector_scale, detector_confidence,
      use_proxy ? "on" : "off", proxy_resolution_index, proxy_threshold,
      sampling_gap, frame_batch,
      tracker == TrackerKind::kSort ? "sort" : "recurrent", refine ? 1 : 0);
}

std::vector<double> StandardDetectorScales() {
  // Each step multiplies pixel count by 0.7 (the tuning coarseness C=30%).
  std::vector<double> scales;
  double s = 1.0;
  for (int i = 0; i < 10; ++i) {
    scales.push_back(s);
    s *= std::sqrt(0.7);
  }
  return scales;
}

std::vector<double> StandardProxyThresholds() {
  return {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

Pipeline::Pipeline(PipelineConfig config, const TrainedModels* trained)
    : config_(std::move(config)), trained_(trained) {
  OTIF_CHECK_GE(config_.sampling_gap, 1);
  OTIF_CHECK_GE(config_.frame_batch, 1);
  OTIF_CHECK_GT(config_.detector_scale, 0.0);
  OTIF_CHECK_LE(config_.detector_scale, 1.0);
  if (trained_ == nullptr) {
    OTIF_CHECK(!config_.use_proxy);
    OTIF_CHECK(config_.tracker == TrackerKind::kSort);
    OTIF_CHECK(!config_.refine);
  } else if (config_.use_proxy) {
    OTIF_CHECK_LT(static_cast<size_t>(config_.proxy_resolution_index),
                  trained_->proxies.size());
    OTIF_CHECK(!trained_->window_sizes.empty());
  }
}

double Pipeline::DecodeSecondsForClip(const sim::Clip& clip) const {
  return SimulatedDecodeSeconds(config_, clip);
}

PipelineResult Pipeline::Run(const sim::Clip& clip) const {
  // Umbrella span for the whole clip: on the timeline each clip shows as
  // one block (tagged with the scheduler's clip-id context) containing the
  // per-stage spans below.
  OTIF_SPAN("pipeline/run");
  PipelineResult result;
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), config_.detector_arch);
  // Per-run render service shared by the proxy and tracking stages (its
  // background cache makes it non-reentrant, so it must not outlive the run).
  sim::Rasterizer raster(&clip);

  // The stage sequence (paper Fig 2). Stages are per-run scoped and
  // communicate only through the FrameContext and the result clock.
  DecodeStage decode(config_, clip);
  ProxyStage proxy(config_, trained_, clip, arch, &raster);
  DetectStage detect(config_, clip, arch);
  TrackStage track(config_, trained_, clip, &raster);
  RefineStage refine(config_, trained_, clip);
  Stage* const stages[] = {&decode, &proxy, &detect, &track, &refine};
  const auto& stage_telemetry = GetStageTelemetry();

  // Each stage call runs under its stage's wall-clock span; the span sites
  // aggregate (count, total, min, max) with relaxed atomics, so the
  // per-frame cost is two clock reads per stage when telemetry is on and
  // one relaxed load when it is off.
  for (int s = 0; s < kNumStages; ++s) {
    telemetry::ScopedSpan span(stage_telemetry[static_cast<size_t>(s)].span);
    stages[s]->BeginClip(&result);
  }
  // Sampled frames run through the stages in batches: each stage sees a
  // group of frame_batch consecutive contexts per call, so batched stages
  // issue one model invocation per group while unbatched stages fall back
  // to the per-frame loop. One stage span per batch instead of per frame.
  //
  // Context slots are allocated once and re-armed per group (Reset keeps
  // the low-res render buffer and vector capacities), so the hot loop does
  // not reconstruct FrameContexts — or their video::Image buffers — for
  // every batch.
  std::vector<FrameContext> ctxs(static_cast<size_t>(config_.frame_batch));
  std::vector<FrameContext*> batch;
  batch.reserve(ctxs.size());
  for (int f = 0; f < clip.num_frames();) {
    batch.clear();
    for (int b = 0; b < config_.frame_batch && f < clip.num_frames();
         ++b, f += config_.sampling_gap) {
      FrameContext& ctx = ctxs[static_cast<size_t>(b)];
      ctx.Reset(f);
      batch.push_back(&ctx);
      ++result.frames_processed;
    }
    for (int s = 0; s < kNumStages; ++s) {
      telemetry::ScopedSpan span(stage_telemetry[static_cast<size_t>(s)].span);
      stages[s]->ProcessBatch(batch, &result);
    }
    // Live progress: with introspection off this is the one relaxed flag
    // load; with it on, the batch is attributed to the clip the scheduler
    // tagged on this thread (-1 outside per-clip work still advances the
    // run total and the stall watchdog).
    if (obs::ProgressEnabled()) {
      obs::RunProgress::Global().OnFramesCommitted(
          static_cast<int>(telemetry::timeline::CurrentContext().clip),
          static_cast<int64_t>(batch.size()));
    }
  }
  for (int s = 0; s < kNumStages; ++s) {
    telemetry::ScopedSpan span(stage_telemetry[static_cast<size_t>(s)].span);
    stages[s]->EndClip(&result);
  }
  if (telemetry::Enabled()) internal::RecordRunTelemetry(result);
  return result;
}

}  // namespace otif::core
