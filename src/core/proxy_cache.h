#ifndef OTIF_CORE_PROXY_CACHE_H_
#define OTIF_CORE_PROXY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>

#include "nn/tensor.h"

namespace otif::core {

/// Thread-safe bounded cache of proxy model scores, keyed by
/// (clip seed, frame, resolution index). Tuner evaluations re-score the
/// same validation frames under many thresholds and configurations, so the
/// hit rate is high; the bound keeps long tuning sessions from growing the
/// cache without limit (FIFO eviction — recomputation is deterministic, so
/// eviction never changes results, only timing).
///
/// All methods are const and internally synchronized: the cache lives in
/// TrainedModels, which pipeline runs share across worker threads.
class ProxyScoreCache {
 public:
  using Key = std::tuple<uint64_t, int, int>;

  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit ProxyScoreCache(size_t capacity = kDefaultCapacity);

  ProxyScoreCache(const ProxyScoreCache&) = delete;
  ProxyScoreCache& operator=(const ProxyScoreCache&) = delete;

  /// Returns the cached scores for `key`, or runs `compute` and caches its
  /// result. `compute` runs outside the lock (scoring is the expensive
  /// part); if two threads miss on the same key concurrently, both compute
  /// and the first insertion wins — compute must be deterministic per key.
  nn::Tensor GetOrCompute(const Key& key,
                          const std::function<nn::Tensor()>& compute) const;

  /// Batched-miss protocol: Lookup probes the cache (counting a hit or a
  /// miss) without computing; the caller scores all missing keys in one
  /// batched model invocation and stores them with Insert. Insert follows
  /// the same first-write-wins rule as GetOrCompute and returns the entry
  /// actually stored under the key.
  bool Lookup(const Key& key, nn::Tensor* out) const;
  nn::Tensor Insert(const Key& key, nn::Tensor value) const;

  /// Drops all entries. Counters are kept *by design*: Clear is used to
  /// bound memory between phases while hit/miss/evict statistics keep
  /// describing the whole session. Call ResetCounters() to start a fresh
  /// measurement interval (e.g. between benchmark repetitions).
  void Clear() const;

  /// Zeroes the hit/miss/evict counters without touching the entries, so
  /// run reports do not accumulate across repetitions.
  void ResetCounters() const;

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Hits / lookups over the counters' lifetime; 0 when no lookups ran.
  double hit_rate() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  mutable std::map<Key, nn::Tensor> entries_;  // Guarded by mu_.
  mutable std::deque<Key> insertion_order_;    // Guarded by mu_.
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> evictions_{0};
};

}  // namespace otif::core

#endif  // OTIF_CORE_PROXY_CACHE_H_
