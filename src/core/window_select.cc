#include "core/window_select.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace otif::core {

WindowSizeSelector::WindowSizeSelector(double frame_w, double frame_h,
                                       Options options)
    : frame_w_(frame_w), frame_h_(frame_h), options_(options) {
  OTIF_CHECK_GT(frame_w, 0);
  OTIF_CHECK_GT(frame_h, 0);
  OTIF_CHECK_GE(options_.k, 1);
}

double WindowSizeSelector::TotalEstSeconds(
    const std::vector<CellGrid>& sample_grids,
    const std::vector<WindowSize>& sizes,
    const models::DetectorArch& arch) const {
  double total = 0.0;
  for (const CellGrid& grid : sample_grids) {
    total += GroupCells(grid, sizes, arch, frame_w_, frame_h_).est_seconds;
  }
  return total;
}

std::vector<WindowSize> WindowSizeSelector::Select(
    const std::vector<CellGrid>& sample_grids,
    const models::DetectorArch& arch) const {
  OTIF_CHECK(!sample_grids.empty());
  const int grid_w = sample_grids[0].grid_w;
  const int grid_h = sample_grids[0].grid_h;
  const double cell_w = frame_w_ / grid_w;
  const double cell_h = frame_h_ / grid_h;

  // W starts with the full-frame size (always available as a fallback).
  const WindowSize full{static_cast<int>(frame_w_ + 0.5),
                        static_cast<int>(frame_h_ + 0.5)};
  std::vector<WindowSize> selected = {full};
  if (options_.k == 1) return selected;

  // Candidate sizes: rectangles of cells at the configured step, capped to
  // the frame; deduplicated.
  std::vector<WindowSize> candidates;
  std::set<std::pair<int, int>> seen;
  for (int cw = options_.candidate_step_cells; cw <= grid_w;
       cw += options_.candidate_step_cells) {
    for (int ch = options_.candidate_step_cells; ch <= grid_h;
         ch += options_.candidate_step_cells) {
      WindowSize s{static_cast<int>(cw * cell_w + 0.5),
                   static_cast<int>(ch * cell_h + 0.5)};
      if (s.w >= full.w && s.h >= full.h) continue;
      if (seen.insert({s.w, s.h}).second) candidates.push_back(s);
    }
  }

  double current = TotalEstSeconds(sample_grids, selected, arch);
  while (static_cast<int>(selected.size()) < options_.k) {
    double best_total = current;
    int best_candidate = -1;
    for (size_t c = 0; c < candidates.size(); ++c) {
      std::vector<WindowSize> trial = selected;
      trial.push_back(candidates[c]);
      const double total = TotalEstSeconds(sample_grids, trial, arch);
      if (total < best_total - 1e-12) {
        best_total = total;
        best_candidate = static_cast<int>(c);
      }
    }
    if (best_candidate < 0) break;  // No candidate helps further.
    selected.push_back(candidates[static_cast<size_t>(best_candidate)]);
    candidates.erase(candidates.begin() + best_candidate);
    current = best_total;
  }
  return selected;
}

}  // namespace otif::core
