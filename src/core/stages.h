#ifndef OTIF_CORE_STAGES_H_
#define OTIF_CORE_STAGES_H_

#include <functional>
#include <vector>

#include "core/cell_grouping.h"
#include "core/pipeline.h"
#include "models/detector.h"
#include "sim/raster.h"
#include "sim/world.h"
#include "track/recurrent_tracker.h"
#include "track/tracker.h"
#include "track/types.h"
#include "video/image.h"

namespace otif::core {

/// Per-frame blackboard the stages communicate through (paper Fig 2 data
/// flow). Each stage reads what upstream stages wrote and appends its own
/// outputs; nothing else is shared between stages for a frame.
///
/// Ownership rules: a FrameContext is created empty by the pipeline driver
/// for every sampled frame and dropped after the last stage ran. Fields are
/// owned by the context; the writing stage is named per field.
struct FrameContext {
  /// Frame index within the clip (set by the driver).
  int frame = 0;

  // --- Written by ProxyStage ---
  /// True when the proxy module ran on this frame (use_proxy configs).
  bool proxy_ran = false;
  /// Proxy saw an empty frame: the detector can be skipped entirely.
  bool skip_detector = false;
  /// Low-resolution render of the frame (reused by TrackStage for
  /// appearance statistics when available). Pixels come from the shared
  /// mem::BufferPool and are re-rendered in place across batches.
  video::Image low_res_frame;
  bool have_low_res_frame = false;
  /// Native-coordinate detector windows covering positive proxy cells.
  std::vector<geom::BBox> windows;
  /// Detector-resolution sizes of the placed windows (drawn from the fixed
  /// trained set W, scaled). DetectStage's batched path uses these to count
  /// distinct window shapes when amortizing per-invocation overhead.
  std::vector<WindowSize> window_sizes;
  /// Simulated cost of running the detector inside `windows` one window
  /// per invocation (the unbatched reference charge).
  double windowed_detect_seconds = 0.0;

  // --- Written by DetectStage ---
  /// Confidence-filtered detections for this frame.
  track::FrameDetections detections;
  /// Window-coverage value for this frame (1.0 when the proxy skipped the
  /// detector); folded into the per-clip mean at commit time.
  double window_coverage = 1.0;

  /// Re-arms the context for frame `frame`, clearing every per-frame field
  /// while keeping the low_res_frame pixel buffer (and the vectors'
  /// capacity) alive so the driver can reuse one context slot per batch
  /// lane without reallocating.
  void Reset(int new_frame) {
    frame = new_frame;
    proxy_ran = false;
    skip_detector = false;
    have_low_res_frame = false;
    windows.clear();
    window_sizes.clear();
    windowed_detect_seconds = 0.0;
    detections.clear();
    window_coverage = 1.0;
  }
};

/// One stage of the per-clip execution pipeline. Stages are constructed per
/// Pipeline::Run call (per-task scope: they hold no state shared across
/// clips or threads) and driven in a fixed order:
///   BeginClip -> ProcessBatch (per batch of sampled frames) -> EndClip.
/// The driver groups consecutive sampled frames into batches of
/// PipelineConfig::frame_batch contexts; ProcessBatch defaults to calling
/// ProcessFrame on each context in frame order, so stages without a batched
/// implementation behave exactly as before. Stages communicate through the
/// FrameContext and charge their simulated costs to the PipelineResult
/// clock; no stage reaches into another's internals.
///
/// Compute/commit split: ProxyStage and DetectStage additionally expose
/// ComputeBatch (pure per-frame work: rendering, model invocations,
/// window grouping — writes only FrameContext fields, no stage or result
/// mutation) and CommitBatch (ordered side effects: SimClock charges,
/// coverage accumulation, counters). ProcessBatch == ComputeBatch followed
/// by CommitBatch. The streaming executor runs ComputeBatch on stage
/// workers in any order and replays CommitBatch per clip in serial frame
/// order, which is what makes cross-clip batching bit-identical to the
/// serial driver.
class Stage {
 public:
  virtual ~Stage() = default;

  /// Clip-level setup / one-off charges (e.g. decode cost).
  virtual void BeginClip(PipelineResult* result) { (void)result; }

  /// Per-frame work; reads/writes the shared FrameContext.
  virtual void ProcessFrame(FrameContext* ctx, PipelineResult* result) = 0;

  /// Batched work over consecutive sampled frames (frame order). Override
  /// to amortize work across the batch (batched model invocations); the
  /// default is the sequential per-frame loop.
  virtual void ProcessBatch(const std::vector<FrameContext*>& batch,
                            PipelineResult* result) {
    for (FrameContext* ctx : batch) ProcessFrame(ctx, result);
  }

  /// Clip-level teardown: emit tracks, aggregate diagnostics.
  virtual void EndClip(PipelineResult* result) { (void)result; }
};

/// Charges the simulated video-decode cost for the clip (frames must be
/// decoded along codec reference chains at the detector resolution; paper
/// Sec 4 "Implementation"). Per-frame work is a no-op — sampled frames
/// arrive already decoded.
class DecodeStage : public Stage {
 public:
  DecodeStage(const PipelineConfig& config, const sim::Clip& clip);

  void BeginClip(PipelineResult* result) override;
  void ProcessFrame(FrameContext* ctx, PipelineResult* result) override;

 private:
  const PipelineConfig& config_;
  const sim::Clip& clip_;
};

/// Runs the segmentation proxy model: renders the frame at the proxy
/// resolution, scores cells (through the shared ProxyScoreCache), groups
/// positive cells into detector windows, and publishes the windows plus the
/// windowed detector cost estimate. No-op when the proxy is disabled.
class ProxyStage : public Stage {
 public:
  /// Batched scoring hook: scores the given rendered frames (cache misses
  /// of one batch) with `proxy`, returning one cell-score tensor per frame.
  /// Defaults to a direct ProxyModel::ScoreBatch invocation; the streaming
  /// executor substitutes a cross-clip batcher route so one network
  /// invocation spans frames of many clips. Must return bit-identical
  /// tensors to ProxyModel::Score per frame (ScoreBatch guarantees this).
  using ScoreBatchFn = std::function<std::vector<nn::Tensor>(
      const models::ProxyModel& proxy,
      const std::vector<const video::Image*>& frames)>;

  ProxyStage(const PipelineConfig& config, const TrainedModels* trained,
             const sim::Clip& clip, const models::DetectorArch& arch,
             sim::Rasterizer* raster);

  /// Replaces the batched scoring invocation (streaming executor hook).
  void set_score_batch_fn(ScoreBatchFn fn) { score_batch_fn_ = std::move(fn); }

  void ProcessFrame(FrameContext* ctx, PipelineResult* result) override;

  /// Batched proxy pass: renders every frame, then scores all cache-missed
  /// frames in a single batched network invocation before grouping cells
  /// per frame. Identical per-frame results to ProcessFrame.
  void ProcessBatch(const std::vector<FrameContext*>& batch,
                    PipelineResult* result) override;

  /// Pure half of ProcessBatch: render + score + window grouping. Writes
  /// only FrameContext fields (and the thread-safe score cache); safe to
  /// run concurrently with other batches of the same clip.
  void ComputeBatch(const std::vector<FrameContext*>& batch);

  /// Ordered half: charges the per-frame proxy cost in frame order.
  void CommitBatch(const std::vector<FrameContext*>& batch,
                   PipelineResult* result);

 private:
  /// Pure post-scoring work: threshold cells and group them into detector
  /// windows for one frame (no charges; those happen in CommitBatch or,
  /// for the per-frame path, in ProcessFrame).
  void ComputeWindows(const nn::Tensor& scores, FrameContext* ctx);
  /// Charges the fixed per-frame proxy cost.
  void ChargeFrame(PipelineResult* result);

  const PipelineConfig& config_;
  const TrainedModels* trained_;  // Null iff the proxy is disabled.
  const sim::Clip& clip_;
  const models::DetectorArch& arch_;
  sim::Rasterizer* raster_;  // Shared per-run render service, not owned.
  const models::ProxyModel* proxy_ = nullptr;
  ScoreBatchFn score_batch_fn_;  // Empty => direct ScoreBatch.
  /// Window sizes scaled to the detector resolution (W is selected in
  /// native coordinates; windows shrink with the frame).
  std::vector<WindowSize> scaled_sizes_;
  double scaled_w_ = 0.0;
  double scaled_h_ = 0.0;
};

/// Runs the (simulated) object detector: inside the proxy's windows when
/// they exist, over the full frame otherwise; skips entirely on
/// proxy-empty frames. Applies the confidence filter and accumulates the
/// window-coverage diagnostic.
class DetectStage : public Stage {
 public:
  /// Batched detection hook: detects on `frames` of `clip` at `scale` with
  /// `detector`, one result per frame. Defaults to a direct
  /// SimulatedDetector::DetectBatch invocation; the streaming executor
  /// substitutes a cross-clip batcher route. Element i must be
  /// bit-identical to Detect(clip, frames[i], scale).
  using DetectBatchFn = std::function<std::vector<track::FrameDetections>(
      const models::SimulatedDetector& detector, const sim::Clip& clip,
      const std::vector<int>& frames, double scale)>;

  DetectStage(const PipelineConfig& config, const sim::Clip& clip,
              const models::DetectorArch& arch);

  /// Replaces the batched detector invocation (streaming executor hook).
  void set_detect_batch_fn(DetectBatchFn fn) {
    detect_batch_fn_ = std::move(fn);
  }

  void ProcessFrame(FrameContext* ctx, PipelineResult* result) override;

  /// Batched detect pass: aggregates the batch's frames into one detector
  /// invocation per group (windowed frames batch per distinct window shape,
  /// full frames share one shape), charging the per-invocation overhead
  /// once per group instead of once per window/frame. Detections are
  /// bit-identical to the per-frame path; only the simulated overhead
  /// charge is amortized.
  void ProcessBatch(const std::vector<FrameContext*>& batch,
                    PipelineResult* result) override;

  /// Pure half of ProcessBatch: detector invocations, window/confidence
  /// filtering, and the per-frame coverage value (stored on the context).
  /// Writes only FrameContext fields; safe to run concurrently with other
  /// batches of the same clip.
  void ComputeBatch(const std::vector<FrameContext*>& batch);

  /// Ordered half: SimClock charges (identical grouping and order to the
  /// serial batch), coverage accumulation, and the kept-detections counter.
  void CommitBatch(const std::vector<FrameContext*>& batch,
                   PipelineResult* result);

  void EndClip(PipelineResult* result) override;

 private:
  const PipelineConfig& config_;
  const sim::Clip& clip_;
  models::SimulatedDetector detector_;
  DetectBatchFn detect_batch_fn_;  // Empty => direct DetectBatch.
  double coverage_sum_ = 0.0;
  int coverage_frames_ = 0;
};

/// Streams detections into the configured tracker (SORT or the recurrent
/// reduced-rate model) and emits the finished tracks at clip end. The
/// recurrent path derives appearance statistics from the low-res render,
/// reusing the proxy's when present.
class TrackStage : public Stage {
 public:
  TrackStage(const PipelineConfig& config, const TrainedModels* trained,
             const sim::Clip& clip, sim::Rasterizer* raster);

  void ProcessFrame(FrameContext* ctx, PipelineResult* result) override;
  void EndClip(PipelineResult* result) override;

 private:
  const PipelineConfig& config_;
  const sim::Clip& clip_;
  sim::Rasterizer* raster_;  // Shared per-run render service, not owned.
  std::unique_ptr<track::Tracker> sort_tracker_;
  std::unique_ptr<track::RecurrentTracker> recurrent_tracker_;
};

/// Applies cluster-based track start/end refinement to the finished tracks
/// (fixed cameras only); runs entirely at clip end.
class RefineStage : public Stage {
 public:
  RefineStage(const PipelineConfig& config, const TrainedModels* trained,
              const sim::Clip& clip);

  void ProcessFrame(FrameContext* ctx, PipelineResult* result) override;
  void EndClip(PipelineResult* result) override;

 private:
  const PipelineConfig& config_;
  const TrainedModels* trained_;
  const sim::Clip& clip_;
};

/// Simulated decode seconds for a clip at the configured gap and detector
/// resolution (shared by DecodeStage and Pipeline::DecodeSecondsForClip).
double SimulatedDecodeSeconds(const PipelineConfig& config,
                              const sim::Clip& clip);

}  // namespace otif::core

#endif  // OTIF_CORE_STAGES_H_
