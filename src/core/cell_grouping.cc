#include "core/cell_grouping.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace otif::core {
namespace {

struct Cluster {
  int x0, y0, x1, y1;  // Cell bounds, half-open.
  double cost = 0.0;
  WindowSize size;
  bool alive = true;
};

// Cheapest window size covering a (w_px x h_px) extent; falls back to the
// largest size (which must cover the full frame).
std::pair<double, WindowSize> CheapestCover(
    const std::vector<WindowSize>& sizes, const models::DetectorArch& arch,
    double w_px, double h_px) {
  double best_cost = std::numeric_limits<double>::infinity();
  WindowSize best = sizes.front();
  bool found = false;
  for (const WindowSize& s : sizes) {
    if (s.w + 1e-6 >= w_px && s.h + 1e-6 >= h_px) {
      const double cost = models::DetectorWindowSeconds(arch, s.w, s.h);
      if (cost < best_cost) {
        best_cost = cost;
        best = s;
        found = true;
      }
    }
  }
  if (!found) {
    // No single window covers this cluster; use the largest (full-frame)
    // size. Cost favors merging such clusters into one full-frame pass.
    const WindowSize& full = sizes.back();
    return {models::DetectorWindowSeconds(arch, full.w, full.h), full};
  }
  return {best_cost, best};
}

}  // namespace

CellGrid CellGrid::FromScores(const nn::Tensor& scores, double threshold) {
  OTIF_CHECK_EQ(scores.ndim(), 2);
  CellGrid grid;
  grid.grid_h = scores.dim(0);
  grid.grid_w = scores.dim(1);
  grid.positive.assign(
      static_cast<size_t>(grid.grid_w) * grid.grid_h, 0);
  for (int64_t i = 0; i < scores.size(); ++i) {
    grid.positive[static_cast<size_t>(i)] = scores[i] >= threshold ? 1 : 0;
  }
  return grid;
}

int CellGrid::CountPositive() const {
  int count = 0;
  for (uint8_t v : positive) count += v;
  return count;
}

GroupingResult GroupCells(const CellGrid& grid,
                          const std::vector<WindowSize>& sizes,
                          const models::DetectorArch& arch, double frame_w,
                          double frame_h) {
  OTIF_CHECK(!sizes.empty());
  OTIF_CHECK_GT(grid.grid_w, 0);
  OTIF_CHECK_GT(grid.grid_h, 0);
  // Sizes must be ordered so the last entry covers the whole frame.
  std::vector<WindowSize> ordered = sizes;
  std::sort(ordered.begin(), ordered.end(),
            [](const WindowSize& a, const WindowSize& b) {
              return static_cast<int64_t>(a.w) * a.h <
                     static_cast<int64_t>(b.w) * b.h;
            });
  OTIF_CHECK_GE(ordered.back().w + 1e-6, frame_w)
      << "window size set must include the full frame";
  OTIF_CHECK_GE(ordered.back().h + 1e-6, frame_h);

  GroupingResult result;
  const double cell_w = frame_w / grid.grid_w;
  const double cell_h = frame_h / grid.grid_h;
  const double full_cost = models::DetectorWindowSeconds(
      arch, ordered.back().w, ordered.back().h);

  // 1. Connected components (4-connectivity) as initial clusters.
  std::vector<int> label(
      static_cast<size_t>(grid.grid_w) * grid.grid_h, -1);
  std::vector<Cluster> clusters;
  for (int gy = 0; gy < grid.grid_h; ++gy) {
    for (int gx = 0; gx < grid.grid_w; ++gx) {
      if (!grid.at(gx, gy) ||
          label[static_cast<size_t>(gy) * grid.grid_w + gx] != -1) {
        continue;
      }
      const int id = static_cast<int>(clusters.size());
      Cluster c{gx, gy, gx + 1, gy + 1, 0.0, ordered.front(), true};
      std::vector<std::pair<int, int>> frontier = {{gx, gy}};
      label[static_cast<size_t>(gy) * grid.grid_w + gx] = id;
      while (!frontier.empty()) {
        auto [cx, cy] = frontier.back();
        frontier.pop_back();
        c.x0 = std::min(c.x0, cx);
        c.y0 = std::min(c.y0, cy);
        c.x1 = std::max(c.x1, cx + 1);
        c.y1 = std::max(c.y1, cy + 1);
        const int dx[4] = {1, -1, 0, 0};
        const int dy[4] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int nx = cx + dx[k], ny = cy + dy[k];
          if (nx < 0 || ny < 0 || nx >= grid.grid_w || ny >= grid.grid_h) {
            continue;
          }
          if (!grid.at(nx, ny) ||
              label[static_cast<size_t>(ny) * grid.grid_w + nx] != -1) {
            continue;
          }
          label[static_cast<size_t>(ny) * grid.grid_w + nx] = id;
          frontier.push_back({nx, ny});
        }
      }
      auto [cost, size] = CheapestCover(ordered, arch, (c.x1 - c.x0) * cell_w,
                                        (c.y1 - c.y0) * cell_h);
      c.cost = cost;
      c.size = size;
      clusters.push_back(c);
    }
  }

  if (clusters.empty()) {
    result.est_seconds = 0.0;
    return result;
  }

  // 2. Greedy agglomerative merging while est(R) decreases.
  bool improved = true;
  while (improved) {
    improved = false;
    double best_gain = 1e-12;
    int best_a = -1, best_b = -1;
    double merged_cost = 0.0;
    WindowSize merged_size;
    for (size_t a = 0; a < clusters.size(); ++a) {
      if (!clusters[a].alive) continue;
      for (size_t b = a + 1; b < clusters.size(); ++b) {
        if (!clusters[b].alive) continue;
        const int x0 = std::min(clusters[a].x0, clusters[b].x0);
        const int y0 = std::min(clusters[a].y0, clusters[b].y0);
        const int x1 = std::max(clusters[a].x1, clusters[b].x1);
        const int y1 = std::max(clusters[a].y1, clusters[b].y1);
        auto [cost, size] = CheapestCover(ordered, arch, (x1 - x0) * cell_w,
                                          (y1 - y0) * cell_h);
        const double gain = clusters[a].cost + clusters[b].cost - cost;
        if (gain > best_gain) {
          best_gain = gain;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
          merged_cost = cost;
          merged_size = size;
        }
      }
    }
    if (best_a >= 0) {
      Cluster& a = clusters[static_cast<size_t>(best_a)];
      Cluster& b = clusters[static_cast<size_t>(best_b)];
      a.x0 = std::min(a.x0, b.x0);
      a.y0 = std::min(a.y0, b.y0);
      a.x1 = std::max(a.x1, b.x1);
      a.y1 = std::max(a.y1, b.y1);
      a.cost = merged_cost;
      a.size = merged_size;
      b.alive = false;
      improved = true;
    }
  }

  // 3. Emit windows; fall back to one full-frame window when cheaper.
  double est = 0.0;
  for (const Cluster& c : clusters) {
    if (c.alive) est += c.cost;
  }
  if (est >= full_cost) {
    PlacedWindow w;
    w.cell_x0 = 0;
    w.cell_y0 = 0;
    w.cell_x1 = grid.grid_w;
    w.cell_y1 = grid.grid_h;
    w.size = ordered.back();
    result.windows.push_back(w);
    result.est_seconds = full_cost;
    result.full_frame = true;
    return result;
  }
  for (const Cluster& c : clusters) {
    if (!c.alive) continue;
    PlacedWindow w;
    w.cell_x0 = c.x0;
    w.cell_y0 = c.y0;
    w.cell_x1 = c.x1;
    w.cell_y1 = c.y1;
    w.size = c.size;
    result.windows.push_back(w);
  }
  result.est_seconds = est;
  return result;
}

std::vector<geom::BBox> WindowsToNativeRects(
    const GroupingResult& grouping, double frame_w, double frame_h,
    int grid_w, int grid_h, double scale) {
  OTIF_CHECK_GT(scale, 0.0);
  std::vector<geom::BBox> rects;
  const double cell_w = frame_w / grid_w;
  const double cell_h = frame_h / grid_h;
  for (const PlacedWindow& w : grouping.windows) {
    // Anchor the window at the covered cells' top-left, clamped so it stays
    // inside the frame.
    double x0 = w.cell_x0 * cell_w;
    double y0 = w.cell_y0 * cell_h;
    const double ww = std::min<double>(w.size.w, frame_w);
    const double wh = std::min<double>(w.size.h, frame_h);
    x0 = std::clamp(x0, 0.0, frame_w - ww);
    y0 = std::clamp(y0, 0.0, frame_h - wh);
    // Scaled-frame rect -> native coordinates.
    rects.push_back(geom::BBox::FromCorners(x0 / scale, y0 / scale,
                                            (x0 + ww) / scale,
                                            (y0 + wh) / scale));
  }
  return rects;
}

}  // namespace otif::core
