#ifndef OTIF_CORE_BEST_CONFIG_H_
#define OTIF_CORE_BEST_CONFIG_H_

#include <functional>
#include <vector>

#include "core/pipeline.h"
#include "sim/world.h"
#include "track/types.h"

namespace otif::core {

/// Accuracy metric over per-clip track outputs; returned values in [0, 1].
/// The evaluation harness builds these from the user's query + ground truth
/// (paper workflow, Fig 1).
using AccuracyFn =
    std::function<double(const std::vector<std::vector<track::Track>>&)>;

/// Result of evaluating one configuration over a clip set.
struct EvalResult {
  double accuracy = 0.0;
  double seconds = 0.0;
  models::SimClock clock;
  std::vector<std::vector<track::Track>> tracks_per_clip;
};

/// Runs the pipeline under `config` over every clip and scores the outputs.
EvalResult EvaluateConfig(const PipelineConfig& config,
                          const TrainedModels* trained,
                          const std::vector<sim::Clip>& clips,
                          const AccuracyFn& accuracy_fn);

/// How a clip set is executed. Both produce bit-identical results; they
/// differ in how wall-clock parallelism and model batching are organized.
enum class ExecutorKind {
  /// Serial reference path: one Pipeline::Run per clip, fanned out over
  /// the worker pool clip-by-clip (model batches never span clips).
  kSerial,
  /// Cross-stream dataflow executor: bounded stage queues with proxy and
  /// detector invocations batched across clips.
  kStreaming,
};

/// "serial" / "streaming".
const char* ExecutorKindName(ExecutorKind kind);

/// Reads OTIF_EXECUTOR ("serial" or "streaming"; default streaming).
/// Unrecognized values fall back to streaming with a logged warning.
ExecutorKind ExecutorKindFromEnv();

/// EvaluateConfig routed through the chosen executor. kSerial is exactly
/// EvaluateConfig; kStreaming runs the clips through a StreamingExecutor
/// (options from the environment) and merges per-clip results in clip
/// order, reproducing the serial totals bit-for-bit.
EvalResult EvaluateConfigWith(ExecutorKind kind, const PipelineConfig& config,
                              const TrainedModels* trained,
                              const std::vector<sim::Clip>& clips,
                              const AccuracyFn& accuracy_fn);

/// Selects the best-accuracy configuration theta_best (paper Sec 3.3):
/// starting from the slowest configuration (no proxy, full resolution,
/// gap 1, SORT tracker — proxy and recurrent models are not yet trained at
/// this stage), repeatedly reduce the detector resolution in C~30% pixel
/// steps while accuracy does not decrease, then reduce the sampling rate
/// the same way. Accuracy is often *higher* below full resolution, which is
/// why the walk continues through accuracy-improving steps.
PipelineConfig SelectBestConfig(const std::vector<sim::Clip>& validation,
                                const AccuracyFn& accuracy_fn,
                                double* best_accuracy_out);

}  // namespace otif::core

#endif  // OTIF_CORE_BEST_CONFIG_H_
