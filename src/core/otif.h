#ifndef OTIF_CORE_OTIF_H_
#define OTIF_CORE_OTIF_H_

#include <memory>
#include <vector>

#include "core/best_config.h"
#include "core/pipeline.h"
#include "core/tuner.h"
#include "sim/dataset.h"
#include "sim/world.h"

namespace otif::core {

/// Scale of an OTIF run: how much data to sample and how long to train.
/// Defaults are sized for CPU-budget experiments; the paper's scale is 60
/// one-minute clips per split with longer training.
struct RunScale {
  int train_clips = 4;
  int valid_clips = 3;
  int test_clips = 4;
  int clip_seconds = 20;
  int proxy_train_steps = 350;
  int tracker_train_steps = 700;
  /// Train only this many proxy resolutions (from largest down); the full
  /// standard set has 5. Figure 7 uses all 5; the main tables use fewer to
  /// bound training cost.
  int proxy_resolutions = 3;
  /// Frames sampled for window-size selection.
  int window_sample_frames = 40;
  /// Maximal power-of-two gap used in tracker-training augmentation.
  int max_training_gap = 32;
};

/// The OTIF system facade (paper Fig 1 workflow): sample train/validation
/// splits, select the best-accuracy configuration theta_best, compute S*
/// (tracks under theta_best on the training set), train segmentation proxy
/// models and the recurrent tracker, select window sizes, build the track
/// refiner, and run the joint parameter tuner. The tuned configurations can
/// then be executed over unseen clips.
class Otif {
 public:
  Otif(sim::DatasetSpec spec, RunScale scale);

  /// Simulates the split clips (deterministic per dataset seed).
  std::vector<sim::Clip> MakeClips(int split, int count) const;
  std::vector<sim::Clip> TrainClips() const;
  std::vector<sim::Clip> ValidClips() const;
  std::vector<sim::Clip> TestClips() const;

  /// Runs the full preparation workflow against an accuracy metric defined
  /// on the validation clips. Idempotent per instance.
  void Prepare(const AccuracyFn& validation_accuracy,
               const Tuner::Options& tuner_options);

  /// The tuner's speed-accuracy curve (valid after Prepare).
  const std::vector<TunerPoint>& curve() const { return curve_; }

  /// theta_best (valid after Prepare).
  const PipelineConfig& theta_best() const { return theta_best_; }

  /// Trained artifacts (valid after Prepare).
  const TrainedModels& trained() const { return trained_; }

  /// Accuracy of theta_best on the validation set.
  double theta_best_accuracy() const { return theta_best_accuracy_; }

  /// Picks the fastest curve point with accuracy within `tolerance` of the
  /// best accuracy achieved on the curve (the paper's "within 5% of best"
  /// selection rule for Tables 2-4).
  const TunerPoint& FastestWithinTolerance(double tolerance) const;

  /// Runs a tuned configuration over a clip set, returning per-clip tracks
  /// and the total simulated cost.
  EvalResult Execute(const PipelineConfig& config,
                     const std::vector<sim::Clip>& clips,
                     const AccuracyFn& accuracy_fn) const;

  /// Simulated seconds spent on model training and other pre-processing
  /// that does not scale with dataset size (Fig 6 pre-processing bars).
  double simulated_training_seconds() const {
    return simulated_training_seconds_;
  }

 private:
  void TrainProxies();
  void TrainTrackerNet();
  void SelectWindows();
  void BuildRefiner();

  sim::DatasetSpec spec_;
  RunScale scale_;
  PipelineConfig theta_best_;
  double theta_best_accuracy_ = 0.0;
  /// Tracks computed by theta_best over the training set (S*). Frames are
  /// offset per clip so they are globally unique; s_star_clip_ and
  /// s_star_offset_ map each track back to its source clip for appearance
  /// lookups during tracker training.
  std::vector<track::Track> s_star_;
  std::vector<int> s_star_clip_;
  std::vector<int> s_star_offset_;
  std::vector<sim::Clip> train_clips_;
  TrainedModels trained_;
  std::vector<TunerPoint> curve_;
  double simulated_training_seconds_ = 0.0;
  bool prepared_ = false;
};

}  // namespace otif::core

#endif  // OTIF_CORE_OTIF_H_
