#ifndef OTIF_CORE_PIPELINE_H_
#define OTIF_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cell_grouping.h"
#include "core/proxy_cache.h"
#include "models/cost_model.h"
#include "models/detector.h"
#include "models/proxy.h"
#include "models/tracker_net.h"
#include "sim/raster.h"
#include "sim/world.h"
#include "track/refine.h"
#include "track/types.h"
#include "util/trace.h"

namespace otif::core {

/// Which tracker the pipeline runs on top of the detector.
enum class TrackerKind {
  /// Heuristic SORT tracker (used inside theta_best and ablations).
  kSort,
  /// The recurrent reduced-rate tracking model (full OTIF).
  kRecurrent,
};

/// One parameter configuration theta (paper Sec 3.5). The tuner walks a
/// sequence of these; theta_best is the accuracy-maximizing instance.
struct PipelineConfig {
  // --- Detection module ---
  std::string detector_arch = "yolov3";
  /// Detector input resolution as a fraction of native resolution.
  double detector_scale = 1.0;
  double detector_confidence = 0.4;
  // --- Proxy model module ---
  bool use_proxy = false;
  /// Index into the trained proxy models (resolution choice).
  int proxy_resolution_index = 0;
  /// Threshold B_proxy on per-cell scores.
  double proxy_threshold = 0.5;
  // --- Tracking module ---
  /// Sampling gap g: process 1 in every g frames (power of two).
  int sampling_gap = 1;
  /// Frames per stage batch: the driver hands consecutive sampled frames to
  /// each stage in groups of this size, letting the proxy and detector run
  /// one batched model invocation per group instead of one per frame.
  /// 1 reproduces strictly per-frame execution.
  int frame_batch = 8;
  TrackerKind tracker = TrackerKind::kSort;
  /// Apply cluster-based start/end refinement (fixed cameras only).
  bool refine = false;

  /// Compact human-readable description, e.g. for tuner logs.
  std::string ToString() const;
};

/// Per-dataset trained artifacts shared by all pipeline runs: proxy models
/// (one per resolution), the recurrent tracker network, the fixed window
/// size set W (native coordinates), and the track refiner built from S*.
struct TrainedModels {
  std::vector<std::unique_ptr<models::ProxyModel>> proxies;
  std::unique_ptr<models::TrackerNet> tracker_net;
  std::vector<WindowSize> window_sizes;
  std::unique_ptr<track::TrackRefiner> refiner;

  /// Thread-safe cache of proxy scores keyed by (clip seed, frame,
  /// resolution index); tuner evaluations re-score the same frames under
  /// many thresholds, possibly from several worker threads.
  ProxyScoreCache proxy_cache;
};

/// Outcome of running the pipeline over one clip.
struct PipelineResult {
  std::vector<track::Track> tracks;
  models::SimClock clock;
  int frames_processed = 0;
  int64_t detections_kept = 0;
  /// Mean fraction of ground-truth detections covered by proxy windows
  /// (1.0 when the proxy is disabled); diagnostic for the tuner.
  double mean_window_coverage = 1.0;
};

/// The OTIF execution pipeline (paper Fig 2): the tracker selects frames by
/// the sampling gap; the segmentation proxy model selects windows; the
/// detector runs inside the windows; detections stream into the tracker.
/// All stage costs are charged to the simulated clock.
class Pipeline {
 public:
  /// `trained` may be null only for configurations with use_proxy = false
  /// and tracker = kSort and refine = false.
  Pipeline(PipelineConfig config, const TrainedModels* trained);

  const PipelineConfig& config() const { return config_; }

  /// Runs the pipeline over a clip, returning tracks and simulated costs.
  PipelineResult Run(const sim::Clip& clip) const;

  /// Simulated decode seconds for processing a clip at the configured gap
  /// and resolution (frames must be decoded along codec reference chains;
  /// decoding happens at the detector resolution, per paper Sec 4
  /// "Implementation").
  double DecodeSecondsForClip(const sim::Clip& clip) const;

 private:
  PipelineConfig config_;
  const TrainedModels* trained_;  // Not owned; may be null (see ctor).
};

namespace internal {

/// Number of execution stages (decode, proxy, detect, track, refine); maps
/// 1:1 onto the first five cost categories.
constexpr int kNumStages = 5;

/// Wall-clock span site for stage `stage` (0..kNumStages-1). Shared by the
/// serial driver and the streaming executor so both report through the
/// same "stage/<name>" telemetry names.
telemetry::SpanSite* StageSpan(int stage);

/// Folds one finished run into the global registry (per-stage simulated
/// seconds, run counters, run-total histogram). Observation only: must
/// never influence the result. Callers check telemetry::Enabled() first.
void RecordRunTelemetry(const PipelineResult& result);

}  // namespace internal

/// The standard detector-scale ladder used by the tuner: each step reduces
/// pixel count by the tuning coarseness C = 30%.
std::vector<double> StandardDetectorScales();

/// The standard proxy threshold grid used by the tuner's caching phase.
std::vector<double> StandardProxyThresholds();

}  // namespace otif::core

#endif  // OTIF_CORE_PIPELINE_H_
