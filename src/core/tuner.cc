#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "track/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace otif::core {

Tuner::Tuner(const std::vector<sim::Clip>* validation,
             const TrainedModels* trained, AccuracyFn accuracy_fn,
             Options options)
    : validation_(validation),
      trained_(trained),
      accuracy_fn_(std::move(accuracy_fn)),
      options_(options) {
  OTIF_CHECK(validation != nullptr);
  OTIF_CHECK(!validation->empty());
  OTIF_CHECK(trained != nullptr);
  OTIF_CHECK_GT(options_.coarseness, 0.0);
  OTIF_CHECK_LT(options_.coarseness, 1.0);
  if (options_.enable_proxy) {
    OTIF_CHECK(!trained_->proxies.empty());
    OTIF_CHECK(!trained_->window_sizes.empty());
  }
}

void Tuner::CacheDetectionModule(const PipelineConfig& theta_best) {
  OTIF_SPAN("tuner/cache_detection");
  // For every (architecture, resolution): runtime is analytic; accuracy is
  // measured on the validation set with other parameters from theta_best
  // (Sec 3.5.1).
  const sim::DatasetSpec& spec = (*validation_)[0].spec();
  std::vector<DetectionProfile> profiles;
  for (const models::DetectorArch& arch : models::StandardDetectorArchs()) {
    for (double scale : StandardDetectorScales()) {
      DetectionProfile profile;
      profile.arch = arch.name;
      profile.scale = scale;
      profile.per_frame_sec = models::DetectorWindowSeconds(
          arch, spec.width * scale, spec.height * scale);
      profiles.push_back(std::move(profile));
    }
  }
  // The grid points are independent measurements; evaluate them across the
  // pool and fill accuracies back in by index.
  const std::vector<double> accuracies = ParallelMap(
      ThreadPool::Default(), static_cast<int64_t>(profiles.size()),
      [&](int64_t i) {
        PipelineConfig config = theta_best;
        config.detector_arch = profiles[static_cast<size_t>(i)].arch;
        config.detector_scale = profiles[static_cast<size_t>(i)].scale;
        config.use_proxy = false;
        config.tracker = TrackerKind::kSort;
        config.refine = false;
        return EvaluateConfig(config, trained_, *validation_, accuracy_fn_)
            .accuracy;
      });
  for (size_t i = 0; i < profiles.size(); ++i) {
    profiles[i].accuracy = accuracies[i];
    ++evaluations_;
    detection_profiles_.push_back(std::move(profiles[i]));
  }
}

void Tuner::CacheProxyModule(const PipelineConfig& theta_best) {
  OTIF_SPAN("tuner/cache_proxy");
  // For every (resolution, threshold): score validation frames (cached in
  // TrainedModels), group cells into windows, and record the windowed
  // detector cost relative to a full-frame pass plus the recall against
  // theta_best detections (Sec 3.5.2).
  const sim::DatasetSpec& spec = (*validation_)[0].spec();
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), theta_best.detector_arch);
  const double full_cost = models::DetectorWindowSeconds(
      arch, spec.width, spec.height);
  const models::CostConstants& costs = models::DefaultCostConstants();
  models::SimulatedDetector detector(arch);

  // Sample frames across the validation clips (bounded for cache cost).
  const int stride = std::max(theta_best.sampling_gap, 8);
  for (size_t res = 0; res < trained_->proxies.size(); ++res) {
    models::ProxyModel* proxy = trained_->proxies[res].get();
    // Pre-score sampled frames once per resolution.
    struct FrameScore {
      const sim::Clip* clip;
      int frame;
      nn::Tensor scores;
    };
    std::vector<FrameScore> scored;
    for (const sim::Clip& clip : *validation_) {
      sim::Rasterizer raster(&clip);
      for (int f = 0; f < clip.num_frames(); f += stride) {
        nn::Tensor scores = trained_->proxy_cache.GetOrCompute(
            std::make_tuple(clip.clip_seed(), f, static_cast<int>(res)),
            [&] {
              return proxy->Score(
                  raster.Render(f, proxy->resolution().raster_w(),
                                proxy->resolution().raster_h()));
            });
        scored.push_back({&clip, f, std::move(scores)});
      }
    }
    // Thresholds only re-read the shared scores; profile them in parallel
    // and append in threshold order (tie-breaking below scans in order).
    const std::vector<double> thresholds = StandardProxyThresholds();
    std::vector<ProxyProfile> profiles = ParallelMap(
        ThreadPool::Default(), static_cast<int64_t>(thresholds.size()),
        [&](int64_t ti) {
          const double threshold = thresholds[static_cast<size_t>(ti)];
          ProxyProfile profile;
          profile.resolution_index = static_cast<int>(res);
          profile.threshold = threshold;
          profile.proxy_sec_per_frame =
              costs.proxy_sec_per_frame +
              costs.proxy_sec_per_pixel * proxy->resolution().world_pixels();
          double cost_sum = 0.0;
          double recall_sum = 0.0;
          int frames = 0;
          for (const FrameScore& fs : scored) {
            const CellGrid grid = CellGrid::FromScores(fs.scores, threshold);
            GroupingResult grouping;
            std::vector<geom::BBox> rects;
            if (grid.CountPositive() > 0) {
              grouping = GroupCells(grid, trained_->window_sizes, arch,
                                    spec.width, spec.height);
              rects = WindowsToNativeRects(grouping, spec.width, spec.height,
                                           grid.grid_w, grid.grid_h, 1.0);
            }
            cost_sum += grouping.est_seconds / full_cost;
            // Recall against theta_best detections (the best automatic
            // labels).
            const track::FrameDetections dets = models::FilterByConfidence(
                detector.Detect(*fs.clip, fs.frame,
                                theta_best.detector_scale),
                theta_best.detector_confidence);
            recall_sum += track::DetectionCoverage(dets, rects);
            ++frames;
          }
          profile.relative_detector_cost =
              frames > 0 ? cost_sum / frames : 1.0;
          profile.recall = frames > 0 ? recall_sum / frames : 1.0;
          return profile;
        });
    for (ProxyProfile& profile : profiles) {
      proxy_profiles_.push_back(std::move(profile));
    }
  }
}

double Tuner::EstimatedPerFrameCost(const PipelineConfig& config) const {
  double det_cost = 0.0;
  for (const DetectionProfile& p : detection_profiles_) {
    if (p.arch == config.detector_arch &&
        std::abs(p.scale - config.detector_scale) < 1e-9) {
      det_cost = p.per_frame_sec;
      break;
    }
  }
  if (det_cost == 0.0) {
    const models::DetectorArch arch = models::ArchByName(
        models::StandardDetectorArchs(), config.detector_arch);
    const sim::DatasetSpec& spec = (*validation_)[0].spec();
    det_cost = models::DetectorWindowSeconds(
        arch, spec.width * config.detector_scale,
        spec.height * config.detector_scale);
  }
  if (!config.use_proxy) return det_cost;
  for (const ProxyProfile& p : proxy_profiles_) {
    if (p.resolution_index == config.proxy_resolution_index &&
        std::abs(p.threshold - config.proxy_threshold) < 1e-9) {
      return p.proxy_sec_per_frame + p.relative_detector_cost * det_cost;
    }
  }
  return det_cost;
}

bool Tuner::ProposeDetectionUpdate(const PipelineConfig& current,
                                   PipelineConfig* out) const {
  // Highest cached accuracy among (arch, scale) at least C faster than the
  // current detection choice.
  double current_det = 0.0;
  for (const DetectionProfile& p : detection_profiles_) {
    if (p.arch == current.detector_arch &&
        std::abs(p.scale - current.detector_scale) < 1e-9) {
      current_det = p.per_frame_sec;
    }
  }
  if (current_det == 0.0) return false;
  const double budget = (1.0 - options_.coarseness) * current_det;
  const DetectionProfile* best = nullptr;
  for (const DetectionProfile& p : detection_profiles_) {
    if (p.per_frame_sec > budget) continue;
    if (best == nullptr || p.accuracy > best->accuracy) best = &p;
  }
  if (best == nullptr) return false;
  *out = current;
  out->detector_arch = best->arch;
  out->detector_scale = best->scale;
  return true;
}

bool Tuner::ProposeProxyUpdate(const PipelineConfig& current,
                               PipelineConfig* out) const {
  if (!options_.enable_proxy || proxy_profiles_.empty()) return false;
  // Current per-frame (proxy + detector) cost; pick the (resolution,
  // threshold) with highest recall whose estimated cost is at least C
  // lower (Sec 3.5.2).
  const double current_cost = EstimatedPerFrameCost(current);
  const double budget = (1.0 - options_.coarseness) * current_cost;
  double det_cost = 0.0;
  {
    PipelineConfig plain = current;
    plain.use_proxy = false;
    det_cost = EstimatedPerFrameCost(plain);
  }
  const ProxyProfile* best = nullptr;
  for (const ProxyProfile& p : proxy_profiles_) {
    const double cost =
        p.proxy_sec_per_frame + p.relative_detector_cost * det_cost;
    if (cost > budget) continue;
    if (best == nullptr || p.recall > best->recall) best = &p;
  }
  if (best == nullptr) return false;
  *out = current;
  out->use_proxy = true;
  out->proxy_resolution_index = best->resolution_index;
  out->proxy_threshold = best->threshold;
  return true;
}

bool Tuner::ProposeGapUpdate(const PipelineConfig& current,
                             PipelineConfig* out) const {
  if (!options_.enable_gap_tuning) return false;
  // g / (1 - C) rounded up to the next power of two doubles the gap at
  // C = 30% (Sec 3.5.3).
  int next = current.sampling_gap;
  const double target = current.sampling_gap / (1.0 - options_.coarseness);
  while (next < target) next *= 2;
  if (next == current.sampling_gap) next *= 2;
  if (next > options_.max_gap) return false;
  *out = current;
  out->sampling_gap = next;
  return true;
}

std::vector<TunerPoint> Tuner::Run(const PipelineConfig& theta_best) {
  detection_profiles_.clear();
  proxy_profiles_.clear();
  evaluations_ = 0;

  // Caching phase.
  CacheDetectionModule(theta_best);
  if (options_.enable_proxy) CacheProxyModule(theta_best);

  // theta_1: theta_best's detection parameters with the configured tracker
  // (the recurrent model and refiner are trained by now).
  PipelineConfig current = theta_best;
  current.tracker = options_.tracker;
  current.use_proxy = false;
  current.refine = options_.enable_refine &&
                   trained_->refiner != nullptr &&
                   !(*validation_)[0].spec().moving_camera;
  if (!options_.enable_gap_tuning) current.sampling_gap = theta_best.sampling_gap;

  std::vector<TunerPoint> curve;
  {
    EvalResult r = EvaluateConfig(current, trained_, *validation_,
                                  accuracy_fn_);
    ++evaluations_;
    curve.push_back({current, r.seconds, r.accuracy, "init"});
  }

  telemetry::Counter* const rounds =
      telemetry::MetricsRegistry::Global().GetCounter("tuner.rounds");
  telemetry::Counter* const eval_counter =
      telemetry::MetricsRegistry::Global().GetCounter("tuner.evaluations");
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    OTIF_SPAN("tuner/round");
    std::vector<PipelineConfig> candidates;
    std::vector<const char*> modules;  // Proposing module, by candidate.
    PipelineConfig candidate;
    if (ProposeDetectionUpdate(current, &candidate)) {
      candidates.push_back(candidate);
      modules.push_back("detection");
    }
    if (ProposeProxyUpdate(current, &candidate)) {
      candidates.push_back(candidate);
      modules.push_back("proxy");
    }
    if (ProposeGapUpdate(current, &candidate)) {
      candidates.push_back(candidate);
      modules.push_back("gap");
    }
    if (candidates.empty()) break;
    if (telemetry::Enabled()) rounds->Add(1);

    // Evaluate the round's candidates concurrently; selecting the winner
    // scans results in candidate order, so ties resolve exactly as the
    // serial loop did (first proposal wins). The per-candidate wall-clock
    // aggregates under tuner/evaluate (count = evaluations).
    const std::vector<EvalResult> results = ParallelMap(
        ThreadPool::Default(), static_cast<int64_t>(candidates.size()),
        [&](int64_t i) {
          telemetry::ScopedSpan span(telemetry::GetSpan("tuner/evaluate"));
          return EvaluateConfig(candidates[static_cast<size_t>(i)], trained_,
                                *validation_, accuracy_fn_);
        });
    double best_accuracy = -1.0;
    TunerPoint best_point;
    for (size_t i = 0; i < candidates.size(); ++i) {
      ++evaluations_;
      if (telemetry::Enabled()) eval_counter->Add(1);
      if (results[i].accuracy > best_accuracy) {
        best_accuracy = results[i].accuracy;
        best_point = {candidates[i], results[i].seconds, results[i].accuracy,
                      modules[i]};
      }
    }
    OTIF_LOG(kDebug) << "tuner round " << iter << ": chose "
                     << best_point.chosen_module << " update "
                     << best_point.config.ToString() << " (accuracy "
                     << best_point.val_accuracy << ")";
    if (telemetry::Enabled()) {
      telemetry::MetricsRegistry::Global()
          .GetCounter(std::string("tuner.chosen.") + best_point.chosen_module)
          ->Add(1);
    }
    curve.push_back(best_point);
    current = best_point.config;
  }
  return curve;
}

}  // namespace otif::core
