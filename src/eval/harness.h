#ifndef OTIF_EVAL_HARNESS_H_
#define OTIF_EVAL_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/otif.h"
#include "eval/workload.h"
#include "util/status.h"

namespace otif::eval {

/// One dataset's Table 2 / Figure 5 experiment: OTIF plus the five track
/// baselines (Miris, Chameleon, NoScope, CaTDet, CenterTrack) on the same
/// train/validation/test splits and accuracy metric.
struct TrackExperimentResult {
  std::string dataset;
  /// Speed-accuracy points per method, measured on the test set.
  std::map<std::string, std::vector<baselines::MethodPoint>> curves;
  /// Best accuracy achieved by any method (reference for the 5% rule).
  double best_accuracy = 0.0;
  /// The OTIF system used (exposes trained models and the tuner curve).
  std::shared_ptr<core::Otif> otif;
};

/// Options controlling experiment size (CPU-bounded defaults).
struct ExperimentOptions {
  core::RunScale scale;
  /// Accuracy tolerance for the "fastest within tolerance" rule; the paper
  /// uses 5%.
  double tolerance = 0.05;
  /// Skip CenterTrack on moving-camera datasets (matching the paper's "-"
  /// entry for UAV in Table 2).
  bool centertrack_skips_moving_camera = true;
  /// Baselines to run (all by default); OTIF always runs.
  std::vector<std::string> methods = {"miris", "chameleon", "noscope",
                                      "catdet", "centertrack"};
};

/// Runs the full track-query experiment on one dataset. Fails with
/// InvalidArgument on an unknown method name in `options.methods`; a
/// non-OK return also triggers the timeline flight recorder
/// (timeline::ReportError) so postmortems carry the last trace events and
/// a telemetry snapshot.
StatusOr<TrackExperimentResult> RunTrackExperiment(
    sim::DatasetId id, const ExperimentOptions& options);

/// Runtime (seconds) of a method for Q queries, given its fastest point
/// within tolerance: reusable_seconds + query_seconds * Q.
double SecondsForQueries(const baselines::MethodPoint& point, int queries);

}  // namespace otif::eval

#endif  // OTIF_EVAL_HARNESS_H_
