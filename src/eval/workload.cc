#include "eval/workload.h"

#include <algorithm>
#include <cmath>

#include "track/metrics.h"
#include "util/logging.h"
#include "util/stats.h"

namespace otif::eval {

core::AccuracyFn TrackWorkload::MakeAccuracyFn(
    const std::vector<sim::Clip>* clips) const {
  OTIF_CHECK(clips != nullptr);
  const TrackWorkload workload = *this;
  return [clips, workload](
             const std::vector<std::vector<track::Track>>& per_clip) {
    OTIF_CHECK_EQ(per_clip.size(), clips->size());
    const int min_frames = static_cast<int>(
        workload.min_track_sec * workload.spec.fps + 0.5);
    std::vector<double> accuracies;
    for (size_t c = 0; c < clips->size(); ++c) {
      const sim::Clip& clip = (*clips)[c];
      if (workload.count_query) {
        const int gt = query::GroundTruthVehicleCount(clip, min_frames);
        const int est =
            query::CountVehicleTracks(per_clip[c], min_frames);
        accuracies.push_back(track::CountAccuracy(est, gt));
      } else {
        const auto gt =
            query::GroundTruthPathCounts(clip, workload.min_path_coverage);
        const double max_dist =
            workload.path_distance_frac *
            std::max(workload.spec.width, workload.spec.height);
        const auto est = query::ClassifyTracksByPath(
            per_clip[c], workload.spec, max_dist);
        accuracies.push_back(query::PathBreakdownAccuracy(est, gt));
      }
    }
    return Mean(accuracies);
  };
}

TrackWorkload MakeTrackWorkload(sim::DatasetId id) {
  TrackWorkload w;
  w.spec = sim::MakeDataset(id);
  w.count_query =
      id == sim::DatasetId::kAmsterdam || id == sim::DatasetId::kJackson;
  return w;
}

std::unique_ptr<query::FramePredicate> FrameQuerySpec::MakePredicate() const {
  OTIF_CHECK_GT(n, 0) << "calibrate the query first";
  if (kind == "count") {
    return std::make_unique<query::CountPredicate>(n);
  }
  if (kind == "region") {
    return std::make_unique<query::RegionPredicate>(region, n);
  }
  OTIF_CHECK(kind == "hotspot") << kind;
  return std::make_unique<query::HotSpotPredicate>(hotspot_radius, n);
}

baselines::FrameTarget FrameQuerySpec::MakeTarget() const {
  if (kind == "count") return baselines::CountTarget();
  if (kind == "region") return baselines::RegionTarget(region);
  OTIF_CHECK(kind == "hotspot") << kind;
  return baselines::HotSpotTarget(hotspot_radius);
}

std::vector<FrameQuerySpec> StandardFrameQueries() {
  std::vector<FrameQuerySpec> queries;
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kUav;
    q.kind = "count";
    queries.push_back(std::move(q));
  }
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kTokyo;
    q.kind = "count";
    queries.push_back(std::move(q));
  }
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kJackson;
    q.kind = "region";
    // Junction core region.
    q.region = geom::Polygon(
        {{440, 240}, {840, 240}, {840, 560}, {440, 560}});
    queries.push_back(std::move(q));
  }
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kCaldot1;
    q.kind = "region";
    // Near half of the highway.
    q.region = geom::Polygon({{200, 200}, {720, 200}, {720, 480}, {200, 480}});
    queries.push_back(std::move(q));
  }
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kWarsaw;
    q.kind = "hotspot";
    q.hotspot_radius = 140.0;
    queries.push_back(std::move(q));
  }
  {
    FrameQuerySpec q;
    q.dataset = sim::DatasetId::kAmsterdam;
    q.kind = "hotspot";
    q.hotspot_radius = 160.0;
    queries.push_back(std::move(q));
  }
  return queries;
}

void CalibrateFrameQuery(const std::vector<sim::Clip>& clips,
                         double max_match_fraction, FrameQuerySpec* spec) {
  OTIF_CHECK(spec != nullptr);
  OTIF_CHECK(!clips.empty());
  for (int n = std::max(2, spec->n); n <= 64; ++n) {
    spec->n = n;
    const auto predicate = spec->MakePredicate();
    int64_t matches = 0, frames = 0;
    for (const sim::Clip& clip : clips) {
      for (int f = 0; f < clip.num_frames(); ++f) {
        if (query::GroundTruthMatches(clip, f, *predicate)) ++matches;
        ++frames;
      }
    }
    const double fraction =
        frames > 0 ? static_cast<double>(matches) / frames : 0.0;
    if (fraction <= max_match_fraction && matches > 0) return;
    if (matches == 0) {
      // Overshot: step back to the previous value and stop.
      spec->n = std::max(2, n - 1);
      return;
    }
  }
}

}  // namespace otif::eval
