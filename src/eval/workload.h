#ifndef OTIF_EVAL_WORKLOAD_H_
#define OTIF_EVAL_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/frame_query.h"
#include "core/best_config.h"
#include "query/queries.h"
#include "sim/dataset.h"

namespace otif::eval {

/// Object-track query workload for one dataset (paper Sec 4.1): Amsterdam
/// and Jackson use track count queries; the rest use path breakdown
/// queries.
struct TrackWorkload {
  sim::DatasetSpec spec;
  bool count_query = false;
  /// Vehicles must be visible at least this long to count.
  double min_track_sec = 1.0;
  /// Path classification tolerance as a fraction of the frame's larger
  /// dimension.
  double path_distance_frac = 0.15;
  /// Ground-truth path coverage needed for an object to count toward a
  /// path label.
  double min_path_coverage = 0.35;

  /// Builds the accuracy function over a fixed clip set (clips must
  /// outlive the returned function). The metric is the paper's count
  /// accuracy 1 - |x - x*| / x*, averaged over clips (and path labels for
  /// breakdown queries).
  core::AccuracyFn MakeAccuracyFn(const std::vector<sim::Clip>* clips) const;
};

/// Standard workload for a dataset.
TrackWorkload MakeTrackWorkload(sim::DatasetId id);

/// Frame-level limit query definition (paper Sec 4.2, Table 3).
struct FrameQuerySpec {
  sim::DatasetId dataset = sim::DatasetId::kSynthetic;
  /// "count", "region", or "hotspot".
  std::string kind;
  /// Threshold N; 0 requests auto-calibration (raised until the fraction
  /// of matching frames drops below ~15%).
  int n = 0;
  double hotspot_radius = 120.0;
  geom::Polygon region;
  int limit = 25;
  int min_separation_sec = 5;

  std::unique_ptr<query::FramePredicate> MakePredicate() const;
  baselines::FrameTarget MakeTarget() const;
};

/// The six frame-level queries from the paper: count on UAV and Tokyo,
/// region on Jackson and Caldot1, hot spot on Warsaw and Amsterdam.
std::vector<FrameQuerySpec> StandardFrameQueries();

/// Raises `spec->n` until at most `max_match_fraction` of the clips'
/// frames match (ground truth), starting from 2.
void CalibrateFrameQuery(const std::vector<sim::Clip>& clips,
                         double max_match_fraction, FrameQuerySpec* spec);

}  // namespace otif::eval

#endif  // OTIF_EVAL_WORKLOAD_H_
