#include "eval/harness.h"

#include <algorithm>

#include "baselines/catdet.h"
#include "baselines/centertrack.h"
#include "baselines/chameleon.h"
#include "baselines/miris.h"
#include "baselines/noscope.h"
#include "obs/introspection_server.h"
#include "obs/run_progress.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::eval {

double SecondsForQueries(const baselines::MethodPoint& point, int queries) {
  return point.reusable_seconds + point.query_seconds * queries;
}

namespace {

/// The experiment body; the public wrapper routes failures through the
/// flight recorder.
StatusOr<TrackExperimentResult> RunTrackExperimentImpl(
    sim::DatasetId id, const ExperimentOptions& options) {
  InitObservabilityFromEnv();
  obs::InitIntrospectionFromEnv();
  OTIF_SPAN("harness/experiment");
  TrackExperimentResult result;
  const TrackWorkload workload = MakeTrackWorkload(id);
  result.dataset = workload.spec.name;

  result.otif = std::make_shared<core::Otif>(workload.spec, options.scale);
  // Clip sets are deterministic; keep stable copies for the closures.
  auto valid = std::make_shared<std::vector<sim::Clip>>(
      result.otif->ValidClips());
  auto test = std::make_shared<std::vector<sim::Clip>>(
      result.otif->TestClips());
  const core::AccuracyFn valid_accuracy =
      workload.MakeAccuracyFn(valid.get());
  const core::AccuracyFn test_accuracy = workload.MakeAccuracyFn(test.get());

  // --- OTIF ---
  core::Tuner::Options tuner_options;
  OTIF_LOG(kInfo) << "[" << result.dataset << "] preparing OTIF";
  {
    telemetry::ScopedSpan span(telemetry::GetSpan("harness/prepare"));
    obs::RunProgress::Global().SetPhase("prepare");
    result.otif->Prepare(valid_accuracy, tuner_options);
  }
  OTIF_LOG(kInfo) << "[" << result.dataset << "] executing curve with the "
                  << core::ExecutorKindName(core::ExecutorKindFromEnv())
                  << " executor";
  {
    telemetry::ScopedSpan span(telemetry::GetSpan("harness/execute_curve"));
    obs::RunProgress::Global().SetPhase("execute_curve");
    std::vector<baselines::MethodPoint> points;
    for (const core::TunerPoint& tp : result.otif->curve()) {
      core::EvalResult r =
          result.otif->Execute(tp.config, *test, test_accuracy);
      baselines::MethodPoint p;
      p.label = tp.config.ToString();
      p.seconds = r.seconds;
      p.reusable_seconds = r.seconds;  // Tracks are reusable: no per-query
                                       // video or model cost.
      p.accuracy = r.accuracy;
      points.push_back(p);
    }
    result.curves["otif"] = std::move(points);
  }

  // --- Baselines ---
  // Construct every requested baseline first, then run them across the
  // worker pool: the methods are independent of one another and only read
  // the shared clip sets. Curves are inserted in baseline order afterwards
  // so the result is identical to the serial loop.
  std::vector<std::unique_ptr<baselines::TrackBaseline>> to_run;
  for (const std::string& method : options.methods) {
    if (method == "centertrack" && options.centertrack_skips_moving_camera &&
        workload.spec.moving_camera) {
      continue;  // Paper Table 2 reports "-" for CenterTrack on UAV.
    }
    std::unique_ptr<baselines::TrackBaseline> baseline;
    if (method == "miris") {
      baseline = std::make_unique<baselines::Miris>();
    } else if (method == "chameleon") {
      baseline = std::make_unique<baselines::Chameleon>();
    } else if (method == "noscope") {
      OTIF_CHECK(!result.otif->trained().proxies.empty());
      baseline = std::make_unique<baselines::NoScope>(
          result.otif->trained().proxies.back().get());
    } else if (method == "catdet") {
      baseline = std::make_unique<baselines::CaTDet>();
    } else if (method == "centertrack") {
      baseline = std::make_unique<baselines::CenterTrack>();
    } else {
      return Status::InvalidArgument("unknown method \"" + method + "\"");
    }
    OTIF_LOG(kInfo) << "[" << result.dataset << "] running "
                    << baseline->name();
    to_run.push_back(std::move(baseline));
  }
  obs::RunProgress::Global().SetPhase("baselines");
  std::vector<std::vector<baselines::MethodPoint>> curves = ParallelMap(
      ThreadPool::Default(), static_cast<int64_t>(to_run.size()),
      [&](int64_t i) {
        baselines::TrackBaseline* baseline = to_run[static_cast<size_t>(i)].get();
        // Per-baseline span (dynamic name, so resolved per call).
        telemetry::ScopedSpan span(
            telemetry::GetSpan("harness/baseline/" + baseline->name()));
        return baseline->Run(*valid, *test, valid_accuracy, test_accuracy);
      });
  for (size_t i = 0; i < to_run.size(); ++i) {
    result.curves[to_run[i]->name()] = std::move(curves[i]);
  }

  obs::RunProgress::Global().SetPhase("idle");
  for (const auto& [name, points] : result.curves) {
    for (const baselines::MethodPoint& p : points) {
      result.best_accuracy = std::max(result.best_accuracy, p.accuracy);
    }
  }
  return result;
}

}  // namespace

StatusOr<TrackExperimentResult> RunTrackExperiment(
    sim::DatasetId id, const ExperimentOptions& options) {
  StatusOr<TrackExperimentResult> result = RunTrackExperimentImpl(id, options);
  if (!result.ok()) {
    telemetry::timeline::ReportError(result.status(), "eval/harness");
  }
  return result;
}

}  // namespace otif::eval
