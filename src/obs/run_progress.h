#ifndef OTIF_OBS_RUN_PROGRESS_H_
#define OTIF_OBS_RUN_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/telemetry.h"

namespace otif::obs {

/// Whether live run-progress recording is armed. One bit of the shared
/// telemetry flag word (telemetry::kProgressFlag), so an instrumentation
/// site in the commit path pays a single relaxed atomic load to find out —
/// the same "everything off" cost contract the spans follow. Armed by
/// InitIntrospectionFromEnv when OTIF_METRICS_PORT or OTIF_PROGRESS_SEC is
/// set, or explicitly by tests.
inline bool ProgressEnabled() {
  return (telemetry::Flags() & telemetry::kProgressFlag) != 0;
}
void SetProgressEnabled(bool enabled);

/// Point-in-time copy of one clip's progress within the current run.
struct ClipProgressSample {
  int clip = 0;
  int64_t committed = 0;  ///< Frames committed so far.
  int64_t total = 0;      ///< Sampled frames the run will commit.
};

/// One clip the executor quarantined during the current run (fault
/// recovery; see StreamingExecutor::Run).
struct QuarantineSample {
  int clip = 0;
  std::string reason;  ///< Status text of the fault that exhausted retries.
};

/// Point-in-time copy of the whole registry (see RunProgress::Snapshot).
struct ProgressSnapshot {
  std::string phase;             ///< "idle", "running", or a caller phase.
  std::string run_label;         ///< Label of the latest run (may be done).
  int64_t run_seq = 0;           ///< Increments at every BeginRun.
  bool run_in_flight = false;    ///< BeginRun seen without EndRun.
  double run_uptime_seconds = 0.0;
  double process_uptime_seconds = 0.0;
  /// Age of the newest commit in the current run; negative while the run
  /// has not committed anything yet (the watchdog then ages from BeginRun).
  double seconds_since_last_commit = -1.0;
  int64_t frames_committed = 0;  ///< Across all clips (incl. unattributed).
  int64_t frames_total = 0;
  int clips_done = 0;            ///< Clips with committed >= total.
  std::vector<ClipProgressSample> clips;
  std::vector<QuarantineSample> quarantined;  ///< Clips given up on.
};

/// Live progress of the run in flight: per-clip atomic frame counters, the
/// run phase, and a last-commit timestamp the /healthz watchdog ages.
///
/// One "run" is one executor invocation over a clip set (a streaming
/// Run(), one serial EvaluateConfig sweep, one bench repetition). Runs are
/// modeled as strictly sequential — a new BeginRun supersedes the previous
/// run's counters (generation-tagged, so scrapers can tell runs apart) —
/// which matches every driver in the tree; concurrent executors would
/// interleave labels but never corrupt counters.
///
/// Concurrency: commit-side updates are relaxed atomic adds on a run state
/// reached through a briefly-held pointer-copy mutex; Snapshot copies the
/// same shared state without stopping writers. Nothing here blocks worker
/// threads beyond that pointer copy, and every method is a no-op while
/// ProgressEnabled() is false.
class RunProgress {
 public:
  /// The process-wide registry (leaked singleton, same rationale as the
  /// metrics registry).
  static RunProgress& Global();

  RunProgress(const RunProgress&) = delete;
  RunProgress& operator=(const RunProgress&) = delete;

  /// Starts a new run generation: `clip_total_frames[i]` is the number of
  /// frames the run will commit for clip i. An idle phase flips to
  /// "running"; a SetPhase override stays in place.
  void BeginRun(std::string label, std::vector<int64_t> clip_total_frames);

  /// Marks the current run finished; a "running" phase flips back to
  /// "idle" (SetPhase overrides stay).
  void EndRun();

  /// Overrides the displayed phase (harness stages like "prepare" or
  /// "baselines" that span many executor runs). Overrides persist across
  /// BeginRun/EndRun until the next SetPhase.
  void SetPhase(std::string phase);

  /// Commit-side hot path: `frames` more frames of `clip` were committed.
  /// A negative clip index (no attribution available) still counts toward
  /// the run total and feeds the watchdog. Callers in the hot loop should
  /// guard with ProgressEnabled() — the one relaxed flag load — before
  /// paying the call; the method re-checks and early-returns regardless.
  void OnFramesCommitted(int clip, int64_t frames);

  /// Records that the executor quarantined `clip` (rare — fault recovery
  /// only, so a mutex-guarded list rather than an atomic structure).
  /// Surfaces in Snapshot().quarantined and /statusz.
  void MarkClipQuarantined(int clip, std::string reason);

  ProgressSnapshot Snapshot() const;

  /// Seconds since the current run last advanced (its newest commit, or
  /// BeginRun while nothing has committed). Negative when no run is in
  /// flight — the watchdog treats that as healthy/idle.
  double SecondsSinceRunAdvanced() const;

 private:
  struct ClipState {
    std::atomic<int64_t> committed{0};
    int64_t total = 0;
  };

  struct RunState {
    std::string label;
    int64_t seq = 0;
    int64_t start_ns = 0;  ///< Process-epoch nanoseconds at BeginRun.
    std::atomic<bool> in_flight{true};
    std::atomic<int64_t> last_commit_ns{-1};
    std::atomic<int64_t> frames_committed{0};
    std::vector<std::unique_ptr<ClipState>> clips;
    int64_t frames_total = 0;
    std::mutex quarantine_mu;
    std::vector<QuarantineSample> quarantined;  // quarantine_mu.
  };

  RunProgress() = default;

  std::shared_ptr<RunState> CurrentState() const;

  mutable std::mutex mu_;
  std::shared_ptr<RunState> state_;  // mu_ (pointer copy only).
  std::string phase_ = "idle";       // mu_.
  int64_t next_seq_ = 1;             // mu_.
};

}  // namespace otif::obs

#endif  // OTIF_OBS_RUN_PROGRESS_H_
