#ifndef OTIF_OBS_INTROSPECTION_SERVER_H_
#define OTIF_OBS_INTROSPECTION_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "util/status.h"

namespace otif::obs {

/// Parses an HTTP query string ("a=1&fmt=json") into `out`. Returns false
/// on malformed input: an empty segment, a segment without '=', an empty
/// key, or a repeated key. No percent-decoding — every parameter the
/// endpoints accept is a plain number or identifier, and a stray '%' is
/// simply part of the (then unrecognized) value. An empty query parses to
/// an empty map.
bool ParseQueryString(std::string_view query,
                      std::map<std::string, std::string>* out);

/// Live introspection over in-flight runs: a dependency-free embedded
/// HTTP/1.1 server (POSIX sockets, blocking accept loop on its own thread,
/// loopback only) serving four read-only endpoints:
///
///   /metrics  Prometheus text exposition of the whole telemetry registry
///             (counters, gauges, histograms with cumulative buckets and
///             _sum/_count, spans as summaries; see prometheus.h).
///   /healthz  Liveness + stall watchdog: 200 while the current run has
///             committed frames within `stall_seconds` (or no run is in
///             flight), 503 once it has not. JSON body with the verdict.
///   /statusz  JSON run status (shared json_writer): phase, per-clip
///             frames committed/total, executor channel depths and batcher
///             fill, buffer-pool bytes, uptimes.
///   /tracez   Last-N completed spans paired up from the seqlock timeline
///             rings (requires timeline collection to be armed; reports
///             timeline_armed so scrapers can tell "off" from "idle").
///             ?n=<1..10000> overrides the span limit.
///   /profilez On-demand sampling CPU profile (profiler.h): starts a
///             windowed profile, blocks the (single-threaded) serving loop
///             for the window, and returns the result.
///             ?seconds=<0.01..60> window (default 2),
///             ?fmt=collapsed|json output shape (default collapsed —
///             pipe straight into flamegraph.pl). 503 when another window
///             is already running or the profiler is unavailable
///             (sanitizer builds).
///
/// Query parameters go through ParseQueryString; malformed strings and
/// out-of-range values get a 400 with a diagnostic body.
///
/// The server also instruments itself: obs.http.requests.<endpoint>.<code>
/// counters and an obs.scrape_seconds histogram, visible in /metrics like
/// every other registry metric.
///
/// Every endpoint (except the deliberately blocking /profilez) snapshots
/// shared state first and serializes outside any lock, so a scrape never
/// blocks worker threads beyond the snapshot mutexes the registries
/// already use. Nothing here writes to pipeline state: runs produce
/// bit-identical outputs with the server on or off.
class IntrospectionServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
    /// back via port()).
    int port = 0;
    /// /healthz reports stalled when the in-flight run has not committed
    /// for this long.
    double stall_seconds = 30.0;
    /// Completed spans /tracez keeps (newest first).
    int tracez_limit = 200;
  };

  /// Binds, listens, and starts the accept thread. Fails (IoError) when
  /// the port is taken or sockets are unavailable.
  static StatusOr<std::unique_ptr<IntrospectionServer>> Start(
      const Options& options);

  ~IntrospectionServer();  // Stops the accept loop and joins the thread.

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// The bound port (the ephemeral pick when Options::port was 0).
  int port() const { return port_; }

  /// Request heads larger than this without a complete request line are
  /// rejected with a 400 instead of buffered further.
  static constexpr size_t kMaxHeadBytes = 8192;

  /// One rendered HTTP response body. Exposed so tests can exercise every
  /// endpoint without sockets.
  struct Response {
    int status = 200;                        ///< HTTP status code.
    std::string content_type = "text/plain"; ///< Content-Type header value.
    std::string body;
  };

  /// Renders the endpoint at `path`. The query string (everything after
  /// '?') is parsed with ParseQueryString; a malformed query, an unknown
  /// parameter, or an out-of-range value gets a 400. Unknown paths get a
  /// 404 index. Thread-safe; read-only except /profilez, which runs a
  /// blocking profiling window.
  Response Handle(const std::string& path) const;

  /// Full request path: parses the HTTP head read off a connection —
  /// 400 when the request line never terminates within kMaxHeadBytes or
  /// the line is malformed (fewer than two tokens, or a method token that
  /// is not all uppercase letters), 405 for a well-formed method other
  /// than GET/HEAD — then dispatches to Handle(). Also the
  /// instrumentation point: bumps obs.http.requests.<endpoint>.<status>
  /// and records obs.scrape_seconds. Exposed so tests can drive the HTTP
  /// edge cases without sockets.
  Response HandleRequest(const std::string& head) const;

 private:
  explicit IntrospectionServer(const Options& options);

  void AcceptLoop();
  void ServeConnection(int fd) const;

  const Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

/// Periodic headless progress logger for non-HTTP runs: every
/// `interval_seconds` logs one OTIF_LOG(kInfo) line summarizing the
/// in-flight run (phase, frames committed/total, clips done). Quiet while
/// no run is in flight. Stops (and joins) on destruction.
class ProgressLogger {
 public:
  explicit ProgressLogger(double interval_seconds);
  ~ProgressLogger();

  ProgressLogger(const ProgressLogger&) = delete;
  ProgressLogger& operator=(const ProgressLogger&) = delete;

 private:
  void Loop();

  const double interval_seconds_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // mu_.
  std::thread thread_;
};

/// Applies the introspection environment configuration once per process
/// (idempotent; later calls return the first outcome):
///
///  - OTIF_METRICS_PORT: when set, arms run-progress recording and timeline
///    collection, starts a process-lifetime IntrospectionServer on that
///    port (0 = ephemeral), and logs the bound address. Unset leaves the
///    whole subsystem off (cost: nothing beyond the flag word).
///  - OTIF_METRICS_PORT_FILE: when set alongside OTIF_METRICS_PORT, the
///    bound port is also written (as one decimal line) to this file so
///    scripts can find an ephemeral port.
///  - OTIF_STALL_SEC: /healthz watchdog window in seconds (default 30).
///  - OTIF_PROGRESS_SEC: when > 0, arms run-progress recording and starts a
///    process-lifetime ProgressLogger at that interval — works with or
///    without the HTTP server.
///  - OTIF_PROFILE=<path>: whole-run CPU profile, dumped to <path> at exit
///    (delegated to InitProfilerFromEnv; see profiler.h). Works with or
///    without the HTTP server.
///
/// Returns the running server (nullptr when OTIF_METRICS_PORT is unset or
/// the bind failed — the failure is logged, never fatal: introspection must
/// not take down a run).
IntrospectionServer* InitIntrospectionFromEnv();

}  // namespace otif::obs

#endif  // OTIF_OBS_INTROSPECTION_SERVER_H_
