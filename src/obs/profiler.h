#ifndef OTIF_OBS_PROFILER_H_
#define OTIF_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace otif::obs {

/// In-process sampling CPU profiler with stage attribution.
///
/// A POSIX CPU-time timer (timer_create on CLOCK_PROCESS_CPUTIME_ID)
/// delivers SIGPROF at ~97 Hz of *consumed CPU*; the kernel hands each
/// signal to a currently-running thread, so samples land on threads in
/// proportion to the CPU they burn. The handler captures a stack with
/// backtrace(), tags it with the thread's innermost telemetry span and
/// timeline clip (the thread-locals maintained by ScopedSpan /
/// ScopedContext while telemetry::kProfilerFlag is set), and pushes the
/// raw program counters into the thread's lock-free sample ring. A
/// background collector drains the rings every few tens of milliseconds
/// and folds identical (stage, clip, stack) triples into counts, so the
/// steady state costs no memory growth no matter how long the window runs.
///
/// Symbolization is deferred entirely to snapshot time: Stop() resolves
/// each distinct program counter once through dladdr + __cxa_demangle
/// (cached across calls), far away from any signal context.
///
/// Async-signal safety rules the handler obeys:
///  - one relaxed load of the shared telemetry flag word gates everything
///    (a late signal after Stop() returns immediately);
///  - no allocation, no locks: the per-thread ring is claimed from a
///    pre-allocated pool by one atomic fetch_add, and every slot write is
///    a relaxed/release atomic into memory that already exists;
///  - backtrace() is primed once at Start() so its lazy libgcc
///    initialization (which may allocate) happens outside signal context;
///  - attribution reads are plain thread-locals owned by the interrupted
///    thread itself (local-exec TLS: no __tls_get_addr, no allocation);
///  - errno is saved and restored around the handler.
///
/// The profiler is *observational only*: SA_RESTART keeps interrupted
/// syscalls transparent and nothing here feeds back into pipeline state,
/// so runs are bit-for-bit identical with the profiler on or off
/// (test-enforced). When the profiler is off the only cost anywhere is the
/// one relaxed flag-word load the other observability layers already pay.
///
/// Under ThreadSanitizer or AddressSanitizer the profiler refuses to start
/// (logged warning, Status::FailedPrecondition): sanitizer runtimes
/// intercept signals and take locks the handler must not touch.
struct ProfilerOptions {
  /// Sampling frequency in Hz of process CPU time. 97 (a prime) by
  /// default so sampling cannot phase-lock with 10ms/1ms periodic work.
  int hz = 97;
  /// Per-thread pending-sample ring capacity (slots). The collector
  /// drains every ~50 ms; overflow increments the dropped counter rather
  /// than blocking or overwriting. Fixed by the first Start of the
  /// process (the ring pool is built once and reused).
  size_t ring_slots = 256;
};

/// One aggregated, symbolized call stack.
struct ProfileStack {
  /// Innermost telemetry span open when the samples hit ("" when the
  /// thread was outside any span).
  std::string stage;
  /// Timeline clip attribution (-1 outside per-clip work).
  int64_t clip = -1;
  /// Symbolized frames, root (outermost caller) first, leaf last —
  /// the order flamegraph collapsed stacks expect.
  std::vector<std::string> frames;
  int64_t count = 0;  ///< Samples that folded into this stack.
};

/// The result of one profiling window.
struct Profile {
  int hz = 0;
  double duration_seconds = 0.0;  ///< Wall time between Start and Stop.
  int64_t samples = 0;            ///< Samples captured into `stacks`.
  int64_t dropped = 0;            ///< Samples lost to full/unclaimed rings.
  /// CPU seconds spent inside the signal handler itself, for overhead
  /// accounting (also exported as obs.profiler.signal_overhead_seconds).
  double signal_overhead_seconds = 0.0;
  std::vector<ProfileStack> stacks;  ///< Sorted by count, descending.
};

/// The process-wide profiler. One window may run at a time; Start while
/// running fails with FailedPrecondition (the /profilez endpoint maps that
/// to 503 so concurrent scrapers cannot corrupt each other's windows).
///
/// Self-metrics, published by the collector into the telemetry registry:
///   obs.profiler.samples                  counter of captured samples
///   obs.profiler.dropped                  counter of lost samples
///   obs.profiler.signal_overhead_seconds  gauge, cumulative handler CPU
class CpuProfiler {
 public:
  static CpuProfiler& Global();

  /// Arms the flag bit, installs the SIGPROF handler, starts the CPU
  /// timer and the collector thread.
  Status Start(const ProfilerOptions& options = {});

  /// Disarms sampling, stops the timer, drains and symbolizes.
  StatusOr<Profile> Stop();

  bool running() const;

  /// Start + sleep(`seconds`) + Stop, for windowed endpoints.
  StatusOr<Profile> ProfileFor(double seconds,
                               const ProfilerOptions& options = {});

 private:
  CpuProfiler() = default;
};

/// Renders a profile as flamegraph-compatible collapsed stacks, one stack
/// per line: "frame;frame;...;leaf <count>\n" (pipe into flamegraph.pl).
/// With `with_context` each line is prefixed with the attribution join,
/// "<stage>;clip<N>;..." — absent attribution renders as "(no stage)" /
/// "(no clip)" so the grammar stays uniform.
std::string ToCollapsed(const Profile& profile, bool with_context);

/// Renders a profile as JSON via the shared json_writer: {"hz", "samples",
/// "dropped", "duration_seconds", "signal_overhead_seconds", "stacks":
/// [{"stage", "clip", "count", "frames": [...]}]}.
std::string ProfileToJson(const Profile& profile);

/// Inclusive flat view: per-symbol sample counts, where each sample
/// contributes at most once to every distinct symbol on its stack. Sorted
/// by count descending, truncated to `top_k`. This is what bench reports
/// embed ("which functions are the CPU actually inside or beneath").
std::vector<std::pair<std::string, int64_t>> TopFrames(const Profile& profile,
                                                       size_t top_k);

/// Applies OTIF_PROFILE=<path> once per process: starts a whole-run
/// profile immediately and registers an atexit hook that stops it and
/// writes the result to <path> (JSON when the path ends in ".json",
/// collapsed stacks otherwise). Failures to start (sanitizers, double
/// init) are logged, never fatal. Returns whether a whole-run profile was
/// armed.
bool InitProfilerFromEnv();

}  // namespace otif::obs

#endif  // OTIF_OBS_PROFILER_H_
