#include "obs/prometheus.h"

#include <sstream>

#include "util/strings.h"

namespace otif::obs {
namespace {

/// Sample-value / bucket-bound formatting: shortest round-trip decimal
/// ("%.17g" is exact for doubles; Prometheus parsers take scientific
/// notation, so 1e-06 bounds stay compact).
std::string FormatDouble(double value) {
  std::string out = StrFormat("%.17g", value);
  // Prefer the short form when it round-trips (17 digits is only needed
  // for values that a shorter form would distort).
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::stod(candidate) == value) return candidate;
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const telemetry::TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  for (const telemetry::CounterSample& s : snapshot.counters) {
    const std::string name = telemetry::PrometheusMetricName(s.name);
    out << "# TYPE " << name << " counter\n";
    out << name << " " << s.value << "\n";
  }
  for (const telemetry::GaugeSample& s : snapshot.gauges) {
    const std::string name = telemetry::PrometheusMetricName(s.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << FormatDouble(s.value) << "\n";
  }
  for (const telemetry::HistogramSample& s : snapshot.histograms) {
    const std::string name = telemetry::PrometheusMetricName(s.name);
    out << "# TYPE " << name << " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < s.bounds.size(); ++i) {
      cumulative += i < s.buckets.size() ? s.buckets[i] : 0;
      out << name << "_bucket{le=\"" << FormatDouble(s.bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    out << name << "_sum " << FormatDouble(s.sum) << "\n";
    out << name << "_count " << s.count << "\n";
  }
  for (const telemetry::SpanSample& s : snapshot.spans) {
    const std::string name = telemetry::PrometheusMetricName(s.name);
    out << "# TYPE " << name << " summary\n";
    out << name << "_sum " << FormatDouble(s.total_seconds) << "\n";
    out << name << "_count " << s.count << "\n";
  }
  return out.str();
}

}  // namespace otif::obs
