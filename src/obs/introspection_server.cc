#include "obs/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "mem/buffer_pool.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "obs/run_progress.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::obs {
namespace {

/// One completed span paired up from the timeline rings.
struct CompletedSpan {
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint64_t tid = 0;
  int64_t clip = -1;
};

/// Pairs begin/end events (per thread, LIFO nesting — the Chrome trace
/// model the rings follow) into completed spans, newest-ending first,
/// capped at `limit`. Unmatched begins (still running or end overwritten)
/// are dropped.
std::vector<CompletedSpan> PairCompletedSpans(
    const std::vector<telemetry::timeline::Event>& events, int limit) {
  std::map<uint64_t, std::vector<const telemetry::timeline::Event*>> stacks;
  std::vector<CompletedSpan> done;
  for (const telemetry::timeline::Event& e : events) {
    std::vector<const telemetry::timeline::Event*>& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(&e);
      continue;
    }
    // End event: unwind to the matching begin (a ring that overwrote some
    // begins can leave strays below; mismatches discard the stray begin).
    while (!stack.empty() && stack.back()->name != e.name) stack.pop_back();
    if (stack.empty()) continue;
    const telemetry::timeline::Event* begin = stack.back();
    stack.pop_back();
    CompletedSpan span;
    span.name = e.name;
    span.start_ns = begin->ts_ns;
    span.dur_ns = e.ts_ns - begin->ts_ns;
    span.tid = e.tid;
    span.clip = begin->clip;
    done.push_back(std::move(span));
  }
  // Events arrive sorted by timestamp, so `done` is ordered by end time;
  // newest first, capped.
  std::vector<CompletedSpan> out;
  const size_t keep =
      limit > 0 ? std::min(done.size(), static_cast<size_t>(limit))
                : done.size();
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    out.push_back(std::move(done[done.size() - 1 - i]));
  }
  return out;
}

std::string RenderStatusz() {
  // Snapshot everything first (each snapshot takes only the brief locks
  // its registry already uses), then serialize lock-free.
  const ProgressSnapshot progress = RunProgress::Global().Snapshot();
  const telemetry::TelemetrySnapshot telemetry = telemetry::CaptureSnapshot();
  const mem::BufferPool::Stats pool = mem::BufferPool::Global().GetStats();

  JsonWriter w;
  w.BeginObject();
  w.Key("phase").Value(progress.phase);
  w.Key("process_uptime_seconds").Value(progress.process_uptime_seconds);
  w.Key("run").BeginObject();
  w.Key("label").Value(progress.run_label);
  w.Key("seq").Value(progress.run_seq);
  w.Key("in_flight").Value(progress.run_in_flight);
  w.Key("uptime_seconds").Value(progress.run_uptime_seconds);
  w.Key("seconds_since_last_commit").Value(progress.seconds_since_last_commit);
  w.Key("frames_committed").Value(progress.frames_committed);
  w.Key("frames_total").Value(progress.frames_total);
  w.Key("clips_done").Value(progress.clips_done);
  w.Key("clips").BeginArray();
  for (const ClipProgressSample& clip : progress.clips) {
    w.BeginObject();
    w.Key("clip").Value(clip.clip);
    w.Key("committed").Value(clip.committed);
    w.Key("total").Value(clip.total);
    w.EndObject();
  }
  w.EndArray();
  // Clips the executor gave up on this run (fault recovery); empty in
  // healthy runs.
  w.Key("quarantined").BeginArray();
  for (const QuarantineSample& q : progress.quarantined) {
    w.BeginObject();
    w.Key("clip").Value(q.clip);
    w.Key("reason").Value(q.reason);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // Executor pressure: channel depth gauges and batcher fill histograms are
  // registered by the streaming executor under fixed name patterns; strip
  // the pattern so /statusz keys read as plain stage names.
  w.Key("executor").BeginObject();
  w.Key("channels").BeginObject();
  constexpr std::string_view kChannelPrefix = "executor.channel.";
  constexpr std::string_view kDepthSuffix = ".depth";
  for (const telemetry::GaugeSample& g : telemetry.gauges) {
    if (!StartsWith(g.name, kChannelPrefix)) continue;
    if (g.name.size() <= kChannelPrefix.size() + kDepthSuffix.size() ||
        g.name.compare(g.name.size() - kDepthSuffix.size(),
                       kDepthSuffix.size(), kDepthSuffix) != 0) {
      continue;
    }
    const std::string channel = g.name.substr(
        kChannelPrefix.size(),
        g.name.size() - kChannelPrefix.size() - kDepthSuffix.size());
    w.Key(channel).Value(g.value);
  }
  w.EndObject();
  w.Key("batchers").BeginObject();
  constexpr std::string_view kBatchPrefix = "executor.batch.";
  constexpr std::string_view kFillSuffix = ".fill";
  for (const telemetry::HistogramSample& h : telemetry.histograms) {
    if (!StartsWith(h.name, kBatchPrefix)) continue;
    if (h.name.size() <= kBatchPrefix.size() + kFillSuffix.size() ||
        h.name.compare(h.name.size() - kFillSuffix.size(), kFillSuffix.size(),
                       kFillSuffix) != 0) {
      continue;
    }
    const std::string batcher = h.name.substr(
        kBatchPrefix.size(),
        h.name.size() - kBatchPrefix.size() - kFillSuffix.size());
    w.Key(batcher).BeginObject();
    w.Key("waves").Value(h.count);
    w.Key("mean_fill").Value(h.count > 0 ? h.sum / h.count : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  w.Key("pool").BeginObject();
  w.Key("hits").Value(pool.hits);
  w.Key("misses").Value(pool.misses);
  w.Key("hit_rate").Value(pool.hit_rate());
  w.Key("bytes_in_flight").Value(pool.bytes_in_flight);
  w.Key("bytes_retained").Value(pool.bytes_retained);
  w.Key("arena_bytes_reserved").Value(pool.arena_bytes_reserved);
  w.EndObject();
  w.EndObject();
  return std::move(w).TakeString();
}

std::string RenderTracez(int limit) {
  const bool armed = telemetry::timeline::CollectionEnabled();
  std::vector<CompletedSpan> spans;
  if (armed) {
    spans = PairCompletedSpans(telemetry::timeline::SnapshotEvents(), limit);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("timeline_armed").Value(armed);
  w.Key("span_count").Value(static_cast<int64_t>(spans.size()));
  w.Key("spans").BeginArray();
  for (const CompletedSpan& s : spans) {
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("start_ns").Value(s.start_ns);
    w.Key("dur_ns").Value(s.dur_ns);
    w.Key("tid").Value(static_cast<uint64_t>(s.tid));
    w.Key("clip").Value(s.clip);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).TakeString();
}

const char kIndexBody[] =
    "otif introspection endpoints:\n"
    "  /metrics   Prometheus text exposition of the telemetry registry\n"
    "  /healthz   liveness + commit-stall watchdog\n"
    "  /statusz   JSON run status (per-clip progress, queues, pool)\n"
    "  /tracez    last completed spans from the timeline rings (?n=<1..10000>)\n"
    "  /profilez  sampling CPU profile (?seconds=<0.01..60>, "
    "?fmt=collapsed|json)\n";

/// Strict decimal integer parse: the whole string must be consumed and fit
/// in int64_t. atoi-style silent prefixes would turn "5xyz" into 5, which a
/// query validator must reject.
bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

/// Strict finite double parse (whole string consumed).
bool ParseFiniteDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!(value == value) || value > 1e300 || value < -1e300) return false;
  *out = value;
  return true;
}

/// Bounded-cardinality endpoint label for the request counters. Anything
/// outside the known path set (404s, typos) folds into "other" so a
/// scanning client cannot mint unbounded metric names.
const char* EndpointLabel(const std::string& path_with_query) {
  std::string_view path(path_with_query);
  const size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  if (path == "/metrics") return "metrics";
  if (path == "/statusz") return "statusz";
  if (path == "/healthz") return "healthz";
  if (path == "/tracez") return "tracez";
  if (path == "/profilez") return "profilez";
  if (path == "/" || path.empty()) return "index";
  return "other";
}

/// HTTP method tokens are uppercase letters; anything else on the front of
/// the request line is noise, not a method we should answer 405 for.
bool IsMethodToken(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

IntrospectionServer::Response BadQuery(const std::string& message) {
  return {400, "text/plain", message + "\n"};
}

}  // namespace

bool ParseQueryString(std::string_view query,
                      std::map<std::string, std::string>* out) {
  out->clear();
  if (query.empty()) return true;
  size_t pos = 0;
  for (;;) {
    const size_t amp = query.find('&', pos);
    const size_t end = amp == std::string_view::npos ? query.size() : amp;
    const std::string_view segment = query.substr(pos, end - pos);
    if (segment.empty()) return false;  // "&&", leading or trailing '&'.
    const size_t eq = segment.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    const bool inserted =
        out->emplace(std::string(segment.substr(0, eq)),
                     std::string(segment.substr(eq + 1)))
            .second;
    if (!inserted) return false;  // Repeated key: ambiguous, reject.
    if (amp == std::string_view::npos) return true;
    pos = amp + 1;
  }
}

IntrospectionServer::IntrospectionServer(const Options& options)
    : options_(options) {}

StatusOr<std::unique_ptr<IntrospectionServer>> IntrospectionServer::Start(
    const Options& options) {
  std::unique_ptr<IntrospectionServer> server(
      new IntrospectionServer(options));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IoError(
        StrFormat("bind(127.0.0.1:%d): %s", options.port,
                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status =
        Status::IoError(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status = Status::IoError(
        StrFormat("getsockname(): %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

IntrospectionServer::~IntrospectionServer() {
  // shutdown() wakes the blocked accept(); the loop then sees the error and
  // exits. Close only after the join so the fd cannot be reused while the
  // accept thread still references it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void IntrospectionServer::AcceptLoop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // shutdown() from the destructor (or a fatal socket error).
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void IntrospectionServer::ServeConnection(int fd) const {
  // Read until the end of the request head (we never use a body). Cap the
  // head so a misbehaving client cannot make the server buffer unboundedly.
  std::string head;
  char buf[1024];
  while (head.size() < kMaxHeadBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  const Response response = HandleRequest(head);
  const char* reason = response.status == 200   ? "OK"
                       : response.status == 400 ? "Bad Request"
                       : response.status == 404 ? "Not Found"
                       : response.status == 405 ? "Method Not Allowed"
                       : response.status == 503 ? "Service Unavailable"
                                                : "Error";
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, reason, response.content_type.c_str(),
      response.body.size());
  if (head.rfind("HEAD ", 0) != 0) out += response.body;
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t n = ::write(fd, out.data() + written, out.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

IntrospectionServer::Response IntrospectionServer::HandleRequest(
    const std::string& head) const {
  const auto started = std::chrono::steady_clock::now();
  const size_t line_end = head.find("\r\n");
  Response response;
  const char* endpoint = "other";
  if (line_end == std::string::npos && head.size() >= kMaxHeadBytes) {
    response = {400, "text/plain", "request line too large\n"};
  } else {
    const std::vector<std::string> parts = StrSplit(
        line_end == std::string::npos ? head : head.substr(0, line_end), ' ');
    if (parts.size() < 2 || !IsMethodToken(parts[0])) {
      response = {400, "text/plain", "bad request\n"};
    } else if (parts[0] != "GET" && parts[0] != "HEAD") {
      response = {405, "text/plain", "only GET and HEAD are supported\n"};
    } else {
      endpoint = EndpointLabel(parts[1]);
      response = Handle(parts[1]);
    }
  }
  // Self-instrumentation: the server shows up in its own /metrics like any
  // other subsystem. Bounded name cardinality: EndpointLabel folds unknown
  // paths into "other" and the status set is the fixed table above.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry.GetHistogram("obs.scrape_seconds")->Record(elapsed);
  registry
      .GetCounter(
          StrFormat("obs.http.requests.%s.%d", endpoint, response.status))
      ->Add(1);
  return response;
}

IntrospectionServer::Response IntrospectionServer::Handle(
    const std::string& raw_path) const {
  std::string path = raw_path;
  std::map<std::string, std::string> params;
  const size_t query = path.find('?');
  if (query != std::string::npos) {
    if (!ParseQueryString(std::string_view(path).substr(query + 1), &params)) {
      return BadQuery("malformed query string");
    }
    path.resize(query);
  }
  if (path == "/tracez") {
    int limit = options_.tracez_limit;
    if (const auto it = params.find("n"); it != params.end()) {
      int64_t n = 0;
      if (!ParseInt64(it->second, &n) || n < 1 || n > 10000) {
        return BadQuery("tracez: n must be an integer in [1, 10000]");
      }
      limit = static_cast<int>(n);
      params.erase(it);
    }
    if (!params.empty()) {
      return BadQuery(
          StrFormat("tracez: unknown parameter \"%s\"",
                    params.begin()->first.c_str()));
    }
    return {200, "application/json", RenderTracez(limit)};
  }
  if (path == "/profilez") {
    double seconds = 2.0;
    bool as_json = false;
    if (const auto it = params.find("seconds"); it != params.end()) {
      if (!ParseFiniteDouble(it->second, &seconds) || seconds < 0.01 ||
          seconds > 60.0) {
        return BadQuery("profilez: seconds must be a number in [0.01, 60]");
      }
      params.erase(it);
    }
    if (const auto it = params.find("fmt"); it != params.end()) {
      if (it->second == "json") {
        as_json = true;
      } else if (it->second != "collapsed") {
        return BadQuery("profilez: fmt must be \"collapsed\" or \"json\"");
      }
      params.erase(it);
    }
    if (!params.empty()) {
      return BadQuery(
          StrFormat("profilez: unknown parameter \"%s\"",
                    params.begin()->first.c_str()));
    }
    // Deliberately blocks this (single-threaded) serving loop for the
    // window: one profile at a time is the contract, and a second scraper
    // queuing on accept() is better than two interleaved windows. A
    // concurrent whole-run profile (OTIF_PROFILE) makes Start fail, which
    // maps to 503 here.
    StatusOr<Profile> profile = CpuProfiler::Global().ProfileFor(seconds);
    if (!profile.ok()) {
      return {503, "text/plain",
              StrFormat("profiler unavailable: %s\n",
                        profile.status().ToString().c_str())};
    }
    if (as_json) {
      return {200, "application/json", ProfileToJson(profile.value())};
    }
    return {200, "text/plain",
            ToCollapsed(profile.value(), /*with_context=*/true)};
  }
  if (!params.empty()) {
    return BadQuery(StrFormat("%s takes no query parameters",
                              path.empty() ? "/" : path.c_str()));
  }
  if (path == "/metrics") {
    // Refresh the mem.* mirror gauges so a scrape sees current pool state
    // (they are otherwise only published at report time).
    mem::BufferPool::Global().PublishTelemetry();
    return {200, "text/plain; version=0.0.4",
            ToPrometheusText(telemetry::CaptureSnapshot())};
  }
  if (path == "/statusz") {
    return {200, "application/json", RenderStatusz()};
  }
  if (path == "/healthz") {
    const double idle = RunProgress::Global().SecondsSinceRunAdvanced();
    const bool stalled = idle >= 0.0 && idle > options_.stall_seconds;
    JsonWriter w;
    w.BeginObject();
    w.Key("status").Value(stalled  ? "stalled"
                          : idle < 0 ? "idle"
                                     : "ok");
    w.Key("seconds_since_advance").Value(idle);
    w.Key("stall_window_seconds").Value(options_.stall_seconds);
    w.EndObject();
    return {stalled ? 503 : 200, "application/json",
            std::move(w).TakeString()};
  }
  if (path == "/" || path.empty()) {
    return {200, "text/plain", kIndexBody};
  }
  return {404, "text/plain", std::string("not found\n\n") + kIndexBody};
}

ProgressLogger::ProgressLogger(double interval_seconds)
    : interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0),
      thread_([this] { Loop(); }) {}

ProgressLogger::~ProgressLogger() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ProgressLogger::Loop() {
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    const ProgressSnapshot p = RunProgress::Global().Snapshot();
    if (p.run_in_flight) {
      const double pct =
          p.frames_total > 0
              ? 100.0 * static_cast<double>(p.frames_committed) /
                    static_cast<double>(p.frames_total)
              : 0.0;
      OTIF_LOG(kInfo) << "[progress] phase=" << p.phase << " run=\""
                      << p.run_label << "\" frames=" << p.frames_committed
                      << "/" << p.frames_total << " ("
                      << StrFormat("%.1f%%", pct) << ") clips_done="
                      << p.clips_done << "/" << p.clips.size()
                      << " uptime=" << StrFormat("%.1fs",
                                                 p.run_uptime_seconds);
    }
    lock.lock();
  }
}

IntrospectionServer* InitIntrospectionFromEnv() {
  static IntrospectionServer* server = []() -> IntrospectionServer* {
    // Whole-run profiling (OTIF_PROFILE=<path>) rides the same init hook
    // so every entry point that arms introspection also honors it.
    InitProfilerFromEnv();
    const char* port_env = std::getenv("OTIF_METRICS_PORT");
    const char* progress_env = std::getenv("OTIF_PROGRESS_SEC");
    if (progress_env != nullptr) {
      const double interval = std::atof(progress_env);
      if (interval > 0.0) {
        SetProgressEnabled(true);
        // Leaked: logs until process exit, like the server below.
        new ProgressLogger(interval);
      }
    }
    if (port_env == nullptr || *port_env == '\0') return nullptr;
    IntrospectionServer::Options options;
    options.port = std::atoi(port_env);
    if (const char* stall = std::getenv("OTIF_STALL_SEC")) {
      const double window = std::atof(stall);
      if (window > 0.0) options.stall_seconds = window;
    }
    SetProgressEnabled(true);
    // Arm the timeline rings so /tracez has spans to show. Harmless to
    // outputs (the timeline never affects results) and only reached when
    // the operator asked for live introspection.
    telemetry::timeline::SetCollectionEnabled(true);
    StatusOr<std::unique_ptr<IntrospectionServer>> started =
        IntrospectionServer::Start(options);
    if (!started.ok()) {
      OTIF_LOG(kError) << "introspection server disabled: "
                       << started.status().ToString();
      return nullptr;
    }
    IntrospectionServer* raw = started.value().release();  // Leaked.
    OTIF_LOG(kInfo) << "introspection server listening on 127.0.0.1:"
                    << raw->port();
    if (const char* port_file = std::getenv("OTIF_METRICS_PORT_FILE")) {
      std::ofstream out(port_file, std::ios::trunc);
      out << raw->port() << "\n";
      if (!out.good()) {
        OTIF_LOG(kWarning) << "failed to write OTIF_METRICS_PORT_FILE="
                           << port_file;
      }
    }
    return raw;
  }();
  return server;
}

}  // namespace otif::obs
