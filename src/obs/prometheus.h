#ifndef OTIF_OBS_PROMETHEUS_H_
#define OTIF_OBS_PROMETHEUS_H_

#include <string>

#include "util/telemetry.h"

namespace otif::obs {

/// Renders a telemetry snapshot in the Prometheus text exposition format
/// (version 0.0.4, the format every scraper accepts):
///
///   - counters     -> `# TYPE <name> counter` + one sample line
///   - gauges       -> `# TYPE <name> gauge` + one sample line
///   - histograms   -> `# TYPE <name> histogram` + cumulative
///                     `<name>_bucket{le="<bound>"}` lines ending in
///                     `le="+Inf"`, plus `<name>_sum` / `<name>_count`
///   - spans        -> `# TYPE <name> summary` + `<name>_sum` (total
///                     seconds) / `<name>_count` (invocations)
///
/// Names are the sanitized exposition names the registry claimed at
/// registration (telemetry::PrometheusMetricName), so this never emits an
/// illegal or colliding series. Pure function of the snapshot: no locks,
/// no registry access.
std::string ToPrometheusText(const telemetry::TelemetrySnapshot& snapshot);

}  // namespace otif::obs

#endif  // OTIF_OBS_PROMETHEUS_H_
