#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

// Sanitizer runtimes intercept signal delivery and take locks inside the
// handler path; a SIGPROF storm under them deadlocks or trips the tool's
// own diagnostics. The profiler therefore refuses to start in those builds.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define OTIF_PROFILER_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define OTIF_PROFILER_SANITIZED 1
#endif
#endif

namespace otif::obs {
namespace {

/// Raw program counters captured per sample. 48 frames covers the deepest
/// pipeline stacks (executor → stage → model → GEMM) with headroom.
constexpr int kMaxFrames = 48;
/// Leading frames that belong to the capture machinery itself: the signal
/// handler (backtrace's caller) and the kernel signal trampoline.
constexpr int kSkipFrames = 2;
/// Rings the pre-allocated pool holds. Threads claim one each, permanently
/// (thread churn across many profiling sessions can exhaust the pool, in
/// which case further threads' samples land in the dropped counter).
constexpr size_t kMaxRings = 128;

struct RawSample {
  const telemetry::SpanSite* stage;
  int64_t clip;
  int32_t depth;
  void* pcs[kMaxFrames];
};

/// Single-producer (the owning thread's SIGPROF handler — handlers never
/// nest, SIGPROF is blocked during its own delivery) / single-consumer (the
/// collector) bounded ring. The producer publishes with a release store of
/// `head`; the consumer releases slots back with a release store of `tail`.
/// A full ring drops the sample and counts it — the handler never blocks.
struct alignas(64) SampleRing {
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> handler_ns{0};
  RawSample* slots = nullptr;  ///< `capacity` entries; null for capacity 0.
  size_t capacity = 0;         ///< Power of two (0 = always-drop overflow).
};

/// Pre-allocated pool of rings, built on first Start and leaked: thread
/// ring assignments are permanent, so the memory must outlive every thread
/// that might still take a late signal.
struct RingPool {
  SampleRing rings[kMaxRings];
  std::atomic<size_t> claimed{0};
};

std::atomic<RingPool*> g_pool{nullptr};

/// Threads beyond kMaxRings park here: capacity 0 means every Push drops.
SampleRing g_overflow_ring;

/// This thread's claimed ring (or &g_overflow_ring once the pool is
/// exhausted). Plain local-exec TLS: reading/writing it from the signal
/// handler involves no allocation and no locks.
thread_local SampleRing* t_ring = nullptr;

int64_t MonotonicNs() {
  // clock_gettime is async-signal-safe (POSIX); steady_clock wraps it but
  // the raw call keeps the handler's dependency surface explicit.
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

/// The SIGPROF handler. Everything it touches is async-signal-safe: one
/// relaxed flag load, backtrace() (primed at Start), plain TLS reads for
/// attribution, and lock-free atomics into pre-allocated ring memory.
/// extern "C" with a distinctive name so symbolization can recognize (and
/// strip) any of its own frames that survive the fixed skip.
extern "C" void OtifProfilerSignalHandler(int, siginfo_t*, void*) {
  const int saved_errno = errno;
  if ((telemetry::Flags() & telemetry::kProfilerFlag) != 0) {
    const int64_t t0 = MonotonicNs();
    RingPool* pool = g_pool.load(std::memory_order_acquire);
    SampleRing* ring = t_ring;
    if (ring == nullptr && pool != nullptr) {
      const size_t idx = pool->claimed.fetch_add(1, std::memory_order_relaxed);
      ring = idx < kMaxRings ? &pool->rings[idx] : &g_overflow_ring;
      t_ring = ring;
    }
    if (ring != nullptr) {
      const uint64_t head = ring->head.load(std::memory_order_relaxed);
      const uint64_t tail = ring->tail.load(std::memory_order_acquire);
      if (head - tail >= ring->capacity) {
        ring->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        RawSample& slot = ring->slots[head & (ring->capacity - 1)];
        void* raw[kMaxFrames + kSkipFrames];
        const int depth = ::backtrace(raw, kMaxFrames + kSkipFrames);
        slot.depth = depth > kSkipFrames ? depth - kSkipFrames : 0;
        std::memcpy(slot.pcs, raw + kSkipFrames,
                    sizeof(void*) * static_cast<size_t>(slot.depth));
        slot.stage = telemetry::timeline::CurrentSpanSite();
        slot.clip = telemetry::timeline::CurrentContext().clip;
        ring->head.store(head + 1, std::memory_order_release);
      }
      ring->handler_ns.fetch_add(MonotonicNs() - t0,
                                 std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

namespace {

/// Fold key: one distinct (stage, clip, stack) triple.
struct FoldKey {
  const telemetry::SpanSite* stage;
  int64_t clip;
  std::vector<void*> pcs;  // Leaf-first, as captured.

  bool operator==(const FoldKey& o) const {
    return stage == o.stage && clip == o.clip && pcs == o.pcs;
  }
};

struct FoldKeyHash {
  size_t operator()(const FoldKey& k) const {
    size_t h = std::hash<const void*>()(k.stage) ^
               (std::hash<int64_t>()(k.clip) * 1099511628211ull);
    for (void* pc : k.pcs) {
      h = h * 1099511628211ull + std::hash<void*>()(pc);
    }
    return h;
  }
};

/// Resolves one pc to a human-readable frame, collapsed-stack safe (no ';',
/// no spaces). dladdr needs the symbol in the dynamic table — executables
/// link with -rdynamic for exactly this — and inlined code resolves to its
/// enclosing exported function (the GEMM microkernel reports as GemmBias).
std::string SymbolizePc(void* pc) {
  Dl_info info;
  std::string name;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
    // Drop the parameter list: "otif::nn::GemmBias(int, int, ...)" →
    // "otif::nn::GemmBias". Keeps lambdas attributed to their enclosing
    // function, which is what a flamegraph reader wants anyway.
    const size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0) name.resize(paren);
  } else if (::dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    name = std::string("[") + (base != nullptr ? base + 1 : info.dli_fname) +
           "]";
  } else {
    name = StrFormat("[0x%zx]", reinterpret_cast<uintptr_t>(pc));
  }
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return name;
}

bool IsCaptureFrame(const std::string& name) {
  return name.find("OtifProfilerSignalHandler") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name.find("killpg") != std::string::npos;
}

/// EINTR-proof sleep: nanosleep is *not* restarted by SA_RESTART, and the
/// whole point of this sleep is to sit through a SIGPROF storm.
void SleepThroughSignals(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto left =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
    timespec req{static_cast<time_t>(left.count() / 1000000000),
                 static_cast<long>(left.count() % 1000000000)};
    if (::nanosleep(&req, nullptr) == 0) return;
  }
}

/// Everything behind CpuProfiler. A plain struct guarded by one mutex for
/// the (rare) Start/Stop transitions; the hot paths never touch it.
struct ProfilerState {
  std::mutex mu;
  bool running = false;
  ProfilerOptions options;
  timer_t timer{};
  bool handler_installed = false;

  std::thread collector;
  std::mutex collector_mu;
  std::condition_variable collector_cv;
  bool collector_stop = false;

  std::chrono::steady_clock::time_point window_start;

  // Collector-owned aggregation for the current window.
  std::unordered_map<FoldKey, int64_t, FoldKeyHash> folded;
  int64_t samples = 0;

  // Ring counters are cumulative across sessions; baselines mark the
  // window start so the Profile reports per-window values.
  int64_t dropped_baseline = 0;
  int64_t handler_ns_baseline = 0;

  // Last values published to the telemetry self-metrics (cumulative).
  int64_t published_samples = 0;
  int64_t published_dropped = 0;
  int64_t published_handler_ns = 0;

  // Symbol cache, persistent across windows (sites are immortal).
  std::map<void*, std::string> symbols;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();  // Leaked, like the
  return *state;                                      // other registries.
}

int64_t SumDropped(const RingPool& pool) {
  int64_t total = g_overflow_ring.dropped.load(std::memory_order_relaxed);
  for (const SampleRing& ring : pool.rings) {
    total += ring.dropped.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t SumHandlerNs(const RingPool& pool) {
  int64_t total = g_overflow_ring.handler_ns.load(std::memory_order_relaxed);
  for (const SampleRing& ring : pool.rings) {
    total += ring.handler_ns.load(std::memory_order_relaxed);
  }
  return total;
}

/// Drains every ring into the fold map. Collector-thread only.
void DrainRings(ProfilerState& state) {
  RingPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  for (SampleRing& ring : pool->rings) {
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    uint64_t tail = ring.tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const RawSample& slot = ring.slots[tail & (ring.capacity - 1)];
      FoldKey key;
      key.stage = slot.stage;
      key.clip = slot.clip;
      key.pcs.assign(slot.pcs, slot.pcs + slot.depth);
      ++state.folded[std::move(key)];
      ++state.samples;
    }
    ring.tail.store(tail, std::memory_order_release);
  }
}

/// Publishes self-metric deltas since the last publish. Collector only.
void PublishSelfMetrics(ProfilerState& state) {
  RingPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  static telemetry::Counter* const samples =
      telemetry::MetricsRegistry::Global().GetCounter("obs.profiler.samples");
  static telemetry::Counter* const dropped =
      telemetry::MetricsRegistry::Global().GetCounter("obs.profiler.dropped");
  static telemetry::Gauge* const overhead =
      telemetry::MetricsRegistry::Global().GetGauge(
          "obs.profiler.signal_overhead_seconds");
  samples->Add(state.samples - state.published_samples);
  state.published_samples = state.samples;
  const int64_t dropped_now = SumDropped(*pool);
  dropped->Add(dropped_now - state.published_dropped);
  state.published_dropped = dropped_now;
  const int64_t handler_ns_now = SumHandlerNs(*pool);
  overhead->Add(static_cast<double>(handler_ns_now -
                                    state.published_handler_ns) /
                1e9);
  state.published_handler_ns = handler_ns_now;
}

void CollectorLoop(ProfilerState& state) {
  std::unique_lock<std::mutex> lock(state.collector_mu);
  while (!state.collector_stop) {
    state.collector_cv.wait_for(lock, std::chrono::milliseconds(50),
                                [&] { return state.collector_stop; });
    lock.unlock();
    DrainRings(state);
    PublishSelfMetrics(state);
    lock.lock();
  }
}

const std::string& CachedSymbol(ProfilerState& state, void* pc) {
  auto it = state.symbols.find(pc);
  if (it == state.symbols.end()) {
    it = state.symbols.emplace(pc, SymbolizePc(pc)).first;
  }
  return it->second;
}

/// Folded map → sorted, symbolized Profile stacks. Collector is stopped
/// when this runs.
void BuildStacks(ProfilerState& state, Profile* profile) {
  profile->stacks.reserve(state.folded.size());
  for (const auto& [key, count] : state.folded) {
    ProfileStack stack;
    stack.stage = key.stage != nullptr ? key.stage->name() : std::string();
    stack.clip = key.clip;
    stack.count = count;
    // Captured leaf-first; emit root-first, stripping any capture-machinery
    // frames that survived the fixed skip (inlining can shift the count).
    stack.frames.reserve(key.pcs.size());
    for (auto it = key.pcs.rbegin(); it != key.pcs.rend(); ++it) {
      const std::string& name = CachedSymbol(state, *it);
      if (IsCaptureFrame(name)) continue;
      stack.frames.push_back(name);
    }
    profile->stacks.push_back(std::move(stack));
  }
  std::sort(profile->stacks.begin(), profile->stacks.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.stage != b.stage) return a.stage < b.stage;
              if (a.clip != b.clip) return a.clip < b.clip;
              return a.frames < b.frames;
            });
}

// Whole-run profile (OTIF_PROFILE): stopped and written by an atexit hook.
std::string& WholeRunPath() {
  static std::string* path = new std::string();
  return *path;
}

void DumpWholeRunProfile() {
  StatusOr<Profile> profile = CpuProfiler::Global().Stop();
  if (!profile.ok()) {
    OTIF_LOG(kError) << "whole-run profile stop failed: "
                     << profile.status().ToString();
    return;
  }
  const std::string& path = WholeRunPath();
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << (json ? ProfileToJson(*profile)
               : ToCollapsed(*profile, /*with_context=*/true));
  if (json) out << "\n";
  out.flush();
  if (!out) {
    OTIF_LOG(kError) << "whole-run profile write to " << path << " failed";
    return;
  }
  OTIF_LOG(kInfo) << "whole-run profile: " << profile->samples
                  << " samples (" << profile->dropped << " dropped) → "
                  << path;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

bool CpuProfiler::running() const {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.running;
}

Status CpuProfiler::Start(const ProfilerOptions& options) {
#ifdef OTIF_PROFILER_SANITIZED
  static const bool warned = [] {
    OTIF_LOG(kWarning)
        << "sampling profiler disabled under TSan/ASan: the sanitizer "
           "runtime intercepts signals and is not async-signal-safe";
    return true;
  }();
  (void)warned;
  (void)options;
  return Status::FailedPrecondition(
      "profiler unavailable in sanitizer builds");
#else
  if (options.hz <= 0 || options.hz > 1000) {
    return Status::InvalidArgument(
        StrFormat("profiler hz must be in (0, 1000], got %d", options.hz));
  }
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) {
    return Status::FailedPrecondition("profiler already running");
  }

  // Build (or reuse) the leaked ring pool. Slot capacity is fixed by the
  // first Start; later windows reuse the same rings.
  if (g_pool.load(std::memory_order_acquire) == nullptr) {
    const size_t capacity = RoundUpPow2(std::max<size_t>(options.ring_slots,
                                                         64));
    RingPool* pool = new RingPool();
    for (SampleRing& ring : pool->rings) {
      ring.slots = new RawSample[capacity];
      ring.capacity = capacity;
    }
    g_pool.store(pool, std::memory_order_release);
  }

  // Prime backtrace(): its first call may dlopen/allocate inside libgcc;
  // force that here, outside any signal context.
  void* prime[4];
  ::backtrace(prime, 4);

  if (!state.handler_installed) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = OtifProfilerSignalHandler;
    sigemptyset(&action.sa_mask);
    // SA_RESTART keeps interrupted syscalls transparent to the run (the
    // bit-identity contract); nanosleep is the one exception callers of
    // long sleeps must loop around.
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    if (::sigaction(SIGPROF, &action, nullptr) != 0) {
      return Status::Internal(StrFormat("sigaction(SIGPROF): %s",
                                        std::strerror(errno)));
    }
    // Left installed for the process lifetime: a straggler SIGPROF after a
    // timer_delete must hit our (inert) handler, never the default action.
    state.handler_installed = true;
  }

  // Fresh window: baselines off the cumulative ring counters.
  RingPool* pool = g_pool.load(std::memory_order_acquire);
  state.folded.clear();
  state.samples = 0;
  state.dropped_baseline = SumDropped(*pool);
  state.handler_ns_baseline = SumHandlerNs(*pool);
  state.published_samples = 0;
  state.options = options;
  state.window_start = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> collector_lock(state.collector_mu);
    state.collector_stop = false;
  }
  state.collector = std::thread([&state] { CollectorLoop(state); });

  telemetry::internal::SetFlag(telemetry::kProfilerFlag, true);

  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  if (::timer_create(CLOCK_PROCESS_CPUTIME_ID, &event, &state.timer) != 0) {
    telemetry::internal::SetFlag(telemetry::kProfilerFlag, false);
    {
      std::lock_guard<std::mutex> collector_lock(state.collector_mu);
      state.collector_stop = true;
    }
    state.collector_cv.notify_all();
    state.collector.join();
    return Status::Internal(StrFormat("timer_create(CLOCK_PROCESS_CPUTIME): "
                                      "%s",
                                      std::strerror(errno)));
  }
  const long interval_ns = 1000000000L / options.hz;
  itimerspec spec;
  spec.it_interval = {interval_ns / 1000000000, interval_ns % 1000000000};
  spec.it_value = spec.it_interval;
  ::timer_settime(state.timer, 0, &spec, nullptr);
  state.running = true;
  return Status::OK();
#endif
}

StatusOr<Profile> CpuProfiler::Stop() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.running) {
    return Status::FailedPrecondition("profiler not running");
  }
  // Disarm first (handlers go inert), then tear the timer down. A signal
  // already in flight sees the cleared flag and returns immediately; one
  // mid-handler when the flag clears finishes its lock-free push, which
  // the final drain below then picks up.
  telemetry::internal::SetFlag(telemetry::kProfilerFlag, false);
  ::timer_delete(state.timer);
  {
    std::lock_guard<std::mutex> collector_lock(state.collector_mu);
    state.collector_stop = true;
  }
  state.collector_cv.notify_all();
  state.collector.join();
  DrainRings(state);
  PublishSelfMetrics(state);
  state.running = false;

  RingPool* pool = g_pool.load(std::memory_order_acquire);
  Profile profile;
  profile.hz = state.options.hz;
  profile.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state.window_start)
          .count();
  profile.samples = state.samples;
  profile.dropped = SumDropped(*pool) - state.dropped_baseline;
  profile.signal_overhead_seconds =
      static_cast<double>(SumHandlerNs(*pool) - state.handler_ns_baseline) /
      1e9;
  BuildStacks(state, &profile);
  state.folded.clear();
  return profile;
}

StatusOr<Profile> CpuProfiler::ProfileFor(double seconds,
                                          const ProfilerOptions& options) {
  if (!(seconds > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("profile window must be positive, got %f", seconds));
  }
  Status started = Start(options);
  if (!started.ok()) return started;
  SleepThroughSignals(seconds);
  return Stop();
}

std::string ToCollapsed(const Profile& profile, bool with_context) {
  std::string out;
  for (const ProfileStack& stack : profile.stacks) {
    std::string line;
    if (with_context) {
      line += stack.stage.empty() ? "(no_stage)" : stack.stage;
      line += ';';
      line += stack.clip >= 0 ? StrFormat("clip%lld",
                                          static_cast<long long>(stack.clip))
                              : "(no_clip)";
    }
    if (stack.frames.empty() && !with_context) {
      line += "(truncated)";
    }
    for (const std::string& frame : stack.frames) {
      if (!line.empty()) line += ';';
      line += frame;
    }
    if (line.empty()) line = "(truncated)";
    out += line;
    out += StrFormat(" %lld\n", static_cast<long long>(stack.count));
  }
  return out;
}

std::string ProfileToJson(const Profile& profile) {
  JsonWriter w;
  w.BeginObject();
  w.Key("hz").Value(profile.hz);
  w.Key("duration_seconds").Value(profile.duration_seconds);
  w.Key("samples").Value(profile.samples);
  w.Key("dropped").Value(profile.dropped);
  w.Key("signal_overhead_seconds").Value(profile.signal_overhead_seconds);
  w.Key("stacks").BeginArray();
  for (const ProfileStack& stack : profile.stacks) {
    w.BeginObject();
    w.Key("stage").Value(stack.stage);
    w.Key("clip").Value(stack.clip);
    w.Key("count").Value(stack.count);
    w.Key("frames").BeginArray();
    for (const std::string& frame : stack.frames) w.Value(frame);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).TakeString();
}

std::vector<std::pair<std::string, int64_t>> TopFrames(const Profile& profile,
                                                       size_t top_k) {
  std::map<std::string, int64_t> inclusive;
  std::vector<const std::string*> seen;
  for (const ProfileStack& stack : profile.stacks) {
    seen.clear();
    for (const std::string& frame : stack.frames) {
      bool duplicate = false;
      for (const std::string* s : seen) duplicate |= (*s == frame);
      if (duplicate) continue;  // Recursion: count each sample once.
      seen.push_back(&frame);
      inclusive[frame] += stack.count;
    }
  }
  std::vector<std::pair<std::string, int64_t>> out(inclusive.begin(),
                                                   inclusive.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

bool InitProfilerFromEnv() {
  static const bool armed = [] {
    const char* path = std::getenv("OTIF_PROFILE");
    if (path == nullptr || *path == '\0') return false;
    WholeRunPath() = path;
    const Status status = CpuProfiler::Global().Start();
    if (!status.ok()) {
      OTIF_LOG(kWarning) << "OTIF_PROFILE ignored: " << status.ToString();
      return false;
    }
    std::atexit(DumpWholeRunProfile);
    OTIF_LOG(kInfo) << "whole-run CPU profile armed → " << WholeRunPath();
    return true;
  }();
  return armed;
}

}  // namespace otif::obs
