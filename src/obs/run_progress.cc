#include "obs/run_progress.h"

#include <chrono>
#include <utility>

namespace otif::obs {
namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process start anchor for the /statusz uptime field. Captured at first
/// use, which in practice is the first BeginRun or Snapshot — close enough
/// to process start for an uptime display.
int64_t ProcessStartNs() {
  static const int64_t start = MonotonicNowNs();
  return start;
}

}  // namespace

void SetProgressEnabled(bool enabled) {
  telemetry::internal::SetFlag(telemetry::kProgressFlag, enabled);
}

RunProgress& RunProgress::Global() {
  // Leaked: commit paths may still report during static destruction.
  static RunProgress* progress = new RunProgress();
  return *progress;
}

void RunProgress::BeginRun(std::string label,
                           std::vector<int64_t> clip_total_frames) {
  if (!ProgressEnabled()) return;
  auto state = std::make_shared<RunState>();
  state->label = std::move(label);
  state->start_ns = MonotonicNowNs();
  state->clips.reserve(clip_total_frames.size());
  for (const int64_t total : clip_total_frames) {
    auto clip = std::make_unique<ClipState>();
    clip->total = total;
    state->frames_total += total;
    state->clips.push_back(std::move(clip));
  }
  ProcessStartNs();  // Anchor uptime no later than the first run.
  std::lock_guard<std::mutex> lock(mu_);
  state->seq = next_seq_++;
  state_ = std::move(state);
  // A harness-set phase ("prepare", "baselines", ...) outlives the runs it
  // contains; only the default idle phase flips to "running".
  if (phase_ == "idle") phase_ = "running";
}

void RunProgress::EndRun() {
  if (!ProgressEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != nullptr) {
    state_->in_flight.store(false, std::memory_order_relaxed);
  }
  if (phase_ == "running") phase_ = "idle";
}

void RunProgress::SetPhase(std::string phase) {
  if (!ProgressEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = std::move(phase);
}

void RunProgress::OnFramesCommitted(int clip, int64_t frames) {
  if (!ProgressEnabled()) return;
  const std::shared_ptr<RunState> state = CurrentState();
  if (state == nullptr) return;
  state->frames_committed.fetch_add(frames, std::memory_order_relaxed);
  state->last_commit_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  if (clip >= 0 && static_cast<size_t>(clip) < state->clips.size()) {
    state->clips[clip]->committed.fetch_add(frames,
                                            std::memory_order_relaxed);
  }
}

void RunProgress::MarkClipQuarantined(int clip, std::string reason) {
  if (!ProgressEnabled()) return;
  const std::shared_ptr<RunState> state = CurrentState();
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(state->quarantine_mu);
  state->quarantined.push_back(QuarantineSample{clip, std::move(reason)});
}

std::shared_ptr<RunProgress::RunState> RunProgress::CurrentState() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

ProgressSnapshot RunProgress::Snapshot() const {
  ProgressSnapshot out;
  const int64_t now_ns = MonotonicNowNs();
  out.process_uptime_seconds =
      static_cast<double>(now_ns - ProcessStartNs()) * 1e-9;
  std::shared_ptr<RunState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = state_;
    out.phase = phase_;
  }
  if (state == nullptr) return out;
  out.run_label = state->label;
  out.run_seq = state->seq;
  out.run_in_flight = state->in_flight.load(std::memory_order_relaxed);
  out.run_uptime_seconds =
      static_cast<double>(now_ns - state->start_ns) * 1e-9;
  out.frames_committed =
      state->frames_committed.load(std::memory_order_relaxed);
  out.frames_total = state->frames_total;
  const int64_t last_ns =
      state->last_commit_ns.load(std::memory_order_relaxed);
  out.seconds_since_last_commit =
      last_ns >= 0 ? static_cast<double>(now_ns - last_ns) * 1e-9 : -1.0;
  out.clips.reserve(state->clips.size());
  for (size_t i = 0; i < state->clips.size(); ++i) {
    ClipProgressSample clip;
    clip.clip = static_cast<int>(i);
    clip.committed = state->clips[i]->committed.load(std::memory_order_relaxed);
    clip.total = state->clips[i]->total;
    if (clip.total > 0 && clip.committed >= clip.total) ++out.clips_done;
    out.clips.push_back(clip);
  }
  {
    std::lock_guard<std::mutex> lock(state->quarantine_mu);
    out.quarantined = state->quarantined;
  }
  return out;
}

double RunProgress::SecondsSinceRunAdvanced() const {
  const std::shared_ptr<RunState> state = CurrentState();
  if (state == nullptr ||
      !state->in_flight.load(std::memory_order_relaxed)) {
    return -1.0;
  }
  const int64_t last_ns =
      state->last_commit_ns.load(std::memory_order_relaxed);
  const int64_t anchor_ns = last_ns >= 0 ? last_ns : state->start_ns;
  return static_cast<double>(MonotonicNowNs() - anchor_ns) * 1e-9;
}

}  // namespace otif::obs
