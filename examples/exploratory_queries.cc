// Exploratory analytics: after one pre-processing pass, run several
// different frame-level queries over the same extracted tracks and show
// that each answers in (simulated) milliseconds — the paper's claim that
// post-processing replaces per-query video decoding and inference.

#include <chrono>
#include <cstdio>

#include "core/otif.h"
#include "eval/workload.h"
#include "query/queries.h"
#include "obs/introspection_server.h"
#include "util/trace_timeline.h"

int main() {
  using namespace otif;

  // OTIF_LOG_LEVEL / OTIF_TRACE_TIMELINE / OTIF_DUMP_ON_ERROR.
  InitObservabilityFromEnv();
  otif::obs::InitIntrospectionFromEnv();

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kJackson);
  core::RunScale scale;
  scale.train_clips = 2;
  scale.valid_clips = 2;
  scale.test_clips = 2;
  scale.clip_seconds = 12;
  scale.proxy_train_steps = 200;
  scale.tracker_train_steps = 500;
  scale.proxy_resolutions = 2;

  core::Otif system(workload.spec, scale);
  auto valid = system.ValidClips();
  const core::AccuracyFn metric = workload.MakeAccuracyFn(&valid);
  std::printf("Pre-processing Jackson junction video once...\n");
  system.Prepare(metric, core::Tuner::Options{});
  const core::TunerPoint& chosen = system.FastestWithinTolerance(0.05);

  auto test = system.TestClips();
  const core::AccuracyFn test_metric = workload.MakeAccuracyFn(&test);
  const core::EvalResult run = system.Execute(chosen.config, test, test_metric);
  std::printf("Pre-processing: %.1f simulated seconds. Now querying...\n\n",
              run.seconds);

  std::vector<int> clip_frames;
  for (const auto& clip : test) clip_frames.push_back(clip.num_frames());

  struct NamedQuery {
    const char* name;
    std::unique_ptr<query::FramePredicate> predicate;
  };
  std::vector<NamedQuery> queries;
  queries.push_back({"frames with >= 3 vehicles",
                     std::make_unique<query::CountPredicate>(3)});
  queries.push_back(
      {"frames with >= 2 vehicles in the junction core",
       std::make_unique<query::RegionPredicate>(
           geom::Polygon({{440, 240}, {840, 240}, {840, 560}, {440, 560}}),
           2)});
  queries.push_back({"frames with a 3-vehicle hot spot (r=150px)",
                     std::make_unique<query::HotSpotPredicate>(150.0, 3)});

  for (const NamedQuery& q : queries) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto frames = query::ExecuteLimitQueryMultiClip(
        run.tracks_per_clip, *q.predicate, clip_frames, 10,
        5 * workload.spec.fps);
    const auto t1 = std::chrono::steady_clock::now();
    int good = 0;
    for (const auto& [ci, f] : frames) {
      if (query::GroundTruthMatches(test[static_cast<size_t>(ci)], f,
                                    *q.predicate)) {
        ++good;
      }
    }
    std::printf("%-48s -> %2zu frames, accuracy %.2f, wall %.1f ms\n", q.name,
                frames.size(),
                frames.empty() ? 1.0
                               : static_cast<double>(good) / frames.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::printf("\nEach query touched only the track store; no video was "
              "decoded and no model ran.\n");
  return 0;
}
