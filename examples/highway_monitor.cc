// Highway monitoring on a Caldot-style camera: demonstrates the
// segmentation proxy model end to end. Renders a frame, scores its cells,
// groups positive cells into detector windows, and reports how much
// detector work the windows save versus a full-frame pass, then runs the
// full pipeline with and without the proxy to compare cost and accuracy.

#include <cstdio>

#include "core/cell_grouping.h"
#include "core/otif.h"
#include "eval/workload.h"
#include "sim/raster.h"
#include "obs/introspection_server.h"
#include "util/trace_timeline.h"

int main() {
  using namespace otif;

  // OTIF_LOG_LEVEL / OTIF_TRACE_TIMELINE / OTIF_DUMP_ON_ERROR.
  InitObservabilityFromEnv();
  otif::obs::InitIntrospectionFromEnv();

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kCaldot1);
  core::RunScale scale;
  scale.train_clips = 2;
  scale.valid_clips = 2;
  scale.test_clips = 1;
  scale.clip_seconds = 12;
  scale.proxy_train_steps = 250;
  scale.tracker_train_steps = 500;
  scale.proxy_resolutions = 2;

  core::Otif system(workload.spec, scale);
  auto valid = system.ValidClips();
  const core::AccuracyFn metric = workload.MakeAccuracyFn(&valid);
  std::printf("Training OTIF models on Caldot1 highway video...\n");
  system.Prepare(metric, core::Tuner::Options{});

  std::printf("\nSelected window sizes W (native px):");
  for (const core::WindowSize& w : system.trained().window_sizes) {
    std::printf(" %dx%d", w.w, w.h);
  }
  std::printf("\n\n");

  // Visualize one frame's proxy output as an ASCII cell grid.
  auto test = system.TestClips();
  const sim::Clip& clip = test[0];
  sim::Rasterizer raster(&clip);
  models::ProxyModel* proxy = system.trained().proxies[0].get();
  const int frame = clip.num_frames() / 2;
  const nn::Tensor scores = proxy->Score(raster.Render(
      frame, proxy->resolution().raster_w(), proxy->resolution().raster_h()));
  std::printf("Proxy cell scores for frame %d ('#' >= 0.5, '+' >= 0.2):\n",
              frame);
  for (int gy = 0; gy < proxy->resolution().grid_h(); ++gy) {
    std::printf("  ");
    for (int gx = 0; gx < proxy->resolution().grid_w(); ++gx) {
      const float s = scores[gy * proxy->resolution().grid_w() + gx];
      std::printf("%c", s >= 0.5f ? '#' : (s >= 0.2f ? '+' : '.'));
    }
    std::printf("\n");
  }

  // Group cells into windows and report the detector-work saving.
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  const core::CellGrid grid = core::CellGrid::FromScores(scores, 0.5);
  const core::GroupingResult grouping =
      core::GroupCells(grid, system.trained().window_sizes, arch,
                       workload.spec.width, workload.spec.height);
  const double full_cost = models::DetectorWindowSeconds(
      arch, workload.spec.width, workload.spec.height);
  std::printf("\n%zu window(s); est detector time %.2f ms vs %.2f ms full "
              "frame (%.1fx less work)\n",
              grouping.windows.size(), grouping.est_seconds * 1e3,
              full_cost * 1e3,
              grouping.est_seconds > 0 ? full_cost / grouping.est_seconds
                                       : 1.0);

  // Full pipeline comparison: proxy off vs on.
  const core::AccuracyFn test_metric = workload.MakeAccuracyFn(&test);
  core::PipelineConfig config = system.theta_best();
  config.tracker = core::TrackerKind::kRecurrent;
  config.sampling_gap = 2;
  const core::EvalResult without =
      system.Execute(config, test, test_metric);
  config.use_proxy = true;
  config.proxy_threshold = 0.4;
  const core::EvalResult with = system.Execute(config, test, test_metric);
  std::printf("\nPipeline without proxy: %.2f s (accuracy %.3f)\n",
              without.seconds, without.accuracy);
  std::printf("Pipeline with proxy:    %.2f s (accuracy %.3f)\n",
              with.seconds, with.accuracy);
  return 0;
}
