// Turning movement counts at a junction (the paper's motivating traffic-
// planning application): extract all tracks from Tokyo-style junction video
// once, then report per-direction vehicle counts and compare with ground
// truth. Also demonstrates that the extracted tracks answer a *second*
// query (hard braking near the junction) with no extra video processing.

#include <cstdio>

#include "core/otif.h"
#include "eval/workload.h"
#include "query/queries.h"
#include "util/table.h"
#include "util/strings.h"
#include "obs/introspection_server.h"
#include "util/trace_timeline.h"

int main() {
  using namespace otif;

  // OTIF_LOG_LEVEL / OTIF_TRACE_TIMELINE / OTIF_DUMP_ON_ERROR.
  InitObservabilityFromEnv();
  otif::obs::InitIntrospectionFromEnv();

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kTokyo);
  core::RunScale scale;
  scale.train_clips = 2;
  scale.valid_clips = 2;
  scale.test_clips = 2;
  scale.clip_seconds = 14;
  scale.proxy_train_steps = 200;
  scale.tracker_train_steps = 500;
  scale.proxy_resolutions = 2;

  core::Otif system(workload.spec, scale);
  auto valid = system.ValidClips();
  const core::AccuracyFn metric = workload.MakeAccuracyFn(&valid);
  std::printf("Preparing OTIF on the Tokyo junction (10 turning "
              "movements)...\n");
  system.Prepare(metric, core::Tuner::Options{});
  const core::TunerPoint& chosen = system.FastestWithinTolerance(0.05);

  auto test = system.TestClips();
  const core::AccuracyFn test_metric = workload.MakeAccuracyFn(&test);
  const core::EvalResult run = system.Execute(chosen.config, test, test_metric);
  std::printf("Tracks extracted in %.1f simulated seconds.\n\n", run.seconds);

  // Turning movement counts per clip.
  TextTable table({"Movement", "Counted", "Ground truth"});
  std::map<std::string, int> total_est, total_gt;
  for (size_t c = 0; c < test.size(); ++c) {
    const auto est = query::ClassifyTracksByPath(
        run.tracks_per_clip[c], workload.spec,
        0.15 * std::max(workload.spec.width, workload.spec.height));
    const auto gt = query::GroundTruthPathCounts(test[c], 0.35);
    for (const auto& [label, n] : est) total_est[label] += n;
    for (const auto& [label, n] : gt) total_gt[label] += n;
  }
  for (const auto& [label, n] : total_gt) {
    table.AddRow({label, StrFormat("%d", total_est[label]),
                  StrFormat("%d", n)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Second query on the same tracks: hard braking (>= 5 m/s^2).
  int braking = 0;
  for (const auto& tracks : run.tracks_per_clip) {
    braking += static_cast<int>(
        query::FindHardBrakingTracks(tracks, workload.spec, 5.0).size());
  }
  std::printf("Hard-braking vehicles across clips: %d "
              "(answered from tracks, no re-processing)\n",
              braking);
  return 0;
}
