// Quickstart: run the complete OTIF workflow on the small synthetic
// dataset — sample splits, select theta_best, train the proxy and tracker
// models, tune parameters, pick a configuration from the speed-accuracy
// curve, extract all tracks from unseen clips, and answer a query from the
// tracks alone.

#include <cstdio>

#include "core/otif.h"
#include "eval/workload.h"
#include "query/queries.h"
#include "obs/introspection_server.h"
#include "util/trace_timeline.h"

int main() {
  using namespace otif;

  // OTIF_LOG_LEVEL / OTIF_TRACE_TIMELINE / OTIF_DUMP_ON_ERROR.
  InitObservabilityFromEnv();
  otif::obs::InitIntrospectionFromEnv();

  // 1. Describe the dataset and experiment scale.
  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kSynthetic);
  core::RunScale scale;
  scale.train_clips = 3;
  scale.valid_clips = 2;
  scale.test_clips = 2;
  scale.clip_seconds = 15;
  core::Otif system(workload.spec, scale);

  // 2. Prepare: theta_best selection, model training, joint tuning.
  //    The accuracy metric is the user-provided part of the workflow
  //    (paper Fig 1); here it is a path-breakdown count accuracy.
  auto valid = system.ValidClips();
  const core::AccuracyFn metric = workload.MakeAccuracyFn(&valid);
  std::printf("Preparing OTIF on '%s'...\n", workload.spec.name.c_str());
  system.Prepare(metric, core::Tuner::Options{});

  // 3. Inspect the speed-accuracy curve and pick a point.
  std::printf("\nSpeed-accuracy curve (validation):\n");
  for (const core::TunerPoint& p : system.curve()) {
    std::printf("  %6.2f s  acc=%.3f  %s\n", p.val_seconds, p.val_accuracy,
                p.config.ToString().c_str());
  }
  const core::TunerPoint& chosen = system.FastestWithinTolerance(0.05);
  std::printf("\nChosen configuration: %s\n", chosen.config.ToString().c_str());

  // 4. Extract all tracks from unseen clips.
  auto test = system.TestClips();
  const core::AccuracyFn test_metric = workload.MakeAccuracyFn(&test);
  const core::EvalResult run =
      system.Execute(chosen.config, test, test_metric);
  std::printf("Extracted tracks from %zu clips in %.2f simulated seconds "
              "(accuracy %.3f)\n",
              test.size(), run.seconds, run.accuracy);

  // 5. Answer queries by post-processing tracks: no video, no ML.
  for (size_t c = 0; c < test.size(); ++c) {
    const auto& tracks = run.tracks_per_clip[c];
    const int cars = query::CountVehicleTracks(tracks, workload.spec.fps);
    const auto braking =
        query::FindHardBrakingTracks(tracks, workload.spec, 4.0);
    std::printf("  clip %zu: %zu tracks, %d vehicles >=1s, %zu hard-braking\n",
                c, tracks.size(), cars, braking.size());
  }
  return 0;
}
